/**
 * @file
 * The single accounting sink of the replay engine.
 *
 * Every SimResult mutation — seek counts, byte counters, seek-time
 * accumulation, mechanism hit/miss tallies — flows through one
 * Accounting instance per run. The disk head lives here too, so
 * host-visible and cleaning accesses share one physical position
 * and the seek definition (§II) is applied in exactly one place.
 * Read stages and the replay engine report what happened; only
 * Accounting decides how it shows up in the result.
 */

#ifndef LOGSEEK_STL_ACCOUNTING_H
#define LOGSEEK_STL_ACCOUNTING_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "disk/head.h"
#include "disk/seek_time.h"
#include "disk/zoned_device.h"
#include "stl/simulator.h"
#include "stl/translation_layer.h"
#include "telemetry/metrics.h"

namespace logseek::stl
{

/** Per-run sink for all SimResult accounting. */
class Accounting
{
  public:
    /**
     * @param result The result being built; must outlive this sink.
     * @param params Seek-time model parameters.
     */
    Accounting(SimResult &result,
               const disk::SeekTimeParams &params);

    /** A host read request arrived. */
    void beginRead();

    /** A host write request of the given size arrived. */
    void beginWrite(std::uint64_t host_bytes);

    /** A read resolved to `fragments` physical runs (post-merge). */
    void readFragmentation(std::size_t fragments);

    /**
     * One host-visible media access covering extent. Seeks are
     * detected against the shared head position, classified by
     * type, timed by the analytic model, and recorded on both the
     * event and the result.
     */
    void hostAccess(IoEvent &event, const SectorExtent &extent,
                    trace::IoType type);

    /**
     * One background cleaning access (media-cache merge or log
     * garbage collection). Moves the shared head but is accounted
     * separately from host-visible seeks.
     */
    void cleaningAccess(IoEvent &event, const MediaAccess &access);

    /** A fragment was served from the selective cache. */
    void cacheHit(IoEvent &event);

    /** A fragmented-read fragment missed the selective cache. */
    void cacheMiss();

    /** A fragment was served from the drive prefetch buffer. */
    void prefetchHit(IoEvent &event);

    /** A defrag rewrite of `bytes` logical bytes was triggered. */
    void defragRewrite(IoEvent &event, std::uint64_t bytes);

    /** Sample the layer's cleaning-merge counter (end of run). */
    void setCleaningMerges(std::uint64_t merges);

    /** Record GC victim statistics (finite log only). */
    void setGcVictimStats(std::uint64_t live_bytes,
                          std::uint64_t span_bytes);

    /** Sample the layer's static fragmentation (end of run). */
    void setStaticFragments(std::size_t fragments);

    /**
     * Route all subsequent media accesses through a zoned device
     * (not owned; may be null to detach). With no device attached
     * — the default — accounting behaves exactly as before the
     * device layer existed.
     */
    void attachDevice(disk::ZonedDevice *device);

    /** Sample the device's lifetime totals and final zone census
     *  into the result (end of run; no-op when detached). */
    void finishDevice();

    /**
     * Switch to deferred (sharded) seek classification. Host and
     * cleaning accesses are journaled instead of classified on the
     * spot; flushDeferred() then classifies the journal in `shards`
     * chunks — in parallel through `executor` when given — and
     * merges the outcome serially in journal order, which keeps the
     * result byte-identical to immediate accounting (the seek
     * definition is prefix-independent: a chunk's classification
     * depends only on where the previous chunk's last access ended,
     * and seekTimeSec re-accumulates in the original order).
     *
     * Callers must flushDeferred() before reading any seek-derived
     * state and before any journaled IoEvent is recycled.
     */
    void enableDeferred(std::size_t shards,
                        ShardExecutor executor);

    /** True once enableDeferred() was called. */
    bool deferredEnabled() const { return shards_ != 0; }

    /** Classify and merge all journaled accesses (see above). */
    void flushDeferred();

    const SimResult &result() const { return result_; }

  private:
    /** One journaled media access awaiting classification. */
    struct DeferredAccess
    {
        IoEvent *event;
        SectorExtent extent;
        trace::IoType type;
        bool cleaning;
    };

    /** Mirror one media access through the attached device. */
    void deviceAccess(IoEvent &event, const SectorExtent &extent,
                      trace::IoType type);

    SimResult &result_;
    disk::DiskHead head_;
    disk::SeekTimeModel timeModel_;
    disk::ZonedDevice *device_ = nullptr;

    /** Deferred mode: 0 = immediate accounting (the default). */
    std::size_t shards_ = 0;
    ShardExecutor executor_;
    std::vector<DeferredAccess> journal_;

    /** Per-entry classification scratch, reused across flushes. */
    std::vector<disk::SeekInfo> seekScratch_;
    std::vector<double> secondsScratch_;

    // Telemetry handles, resolved once at construction; add() is
    // self-gated on the global enabled flag, so calls below cost a
    // relaxed load when telemetry is off.
    telemetry::Counter *requestsRead_;
    telemetry::Counter *requestsWrite_;
    telemetry::Counter *seeksRead_;
    telemetry::Counter *seeksWrite_;
    telemetry::Counter *seeksCleaning_;
    telemetry::Counter *mediaReadBytes_;
    telemetry::Counter *mediaWriteBytes_;
    telemetry::Counter *defragRewrites_;
    telemetry::Counter *shardFlushes_;
    telemetry::Counter *shardAccesses_;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_ACCOUNTING_H
