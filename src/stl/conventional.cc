#include "conventional.h"

#include "util/logging.h"

namespace logseek::stl
{

void
ConventionalLayer::translateReadInto(const SectorExtent &extent,
                                     SegmentBuffer &out) const
{
    panicIf(extent.empty(), "ConventionalLayer: empty read");
    out.clear();
    out.push(Segment{extent, extent.start, true});
}

void
ConventionalLayer::placeWriteInto(const SectorExtent &extent,
                                  SegmentBuffer &out)
{
    panicIf(extent.empty(), "ConventionalLayer: empty write");
    out.clear();
    out.push(Segment{extent, extent.start, true});
}

void
ConventionalLayer::translateReadBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
    const
{
    out.clear();
    for (const SectorExtent &extent : extents) {
        panicIf(extent.empty(), "ConventionalLayer: empty read");
        out.flat().push(Segment{extent, extent.start, true});
        out.endRecord();
    }
}

void
ConventionalLayer::placeWriteBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
{
    out.clear();
    for (const SectorExtent &extent : extents) {
        panicIf(extent.empty(), "ConventionalLayer: empty write");
        out.flat().push(Segment{extent, extent.start, true});
        out.endRecord();
    }
}

} // namespace logseek::stl
