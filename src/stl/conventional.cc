#include "conventional.h"

#include "util/logging.h"

namespace logseek::stl
{

std::vector<Segment>
ConventionalLayer::translateRead(const SectorExtent &extent) const
{
    panicIf(extent.empty(), "ConventionalLayer: empty read");
    return {Segment{extent, extent.start, true}};
}

std::vector<Segment>
ConventionalLayer::placeWrite(const SectorExtent &extent)
{
    panicIf(extent.empty(), "ConventionalLayer: empty write");
    return {Segment{extent, extent.start, true}};
}

} // namespace logseek::stl
