#include "conventional.h"

#include "util/logging.h"

namespace logseek::stl
{

void
ConventionalLayer::translateReadInto(const SectorExtent &extent,
                                     SegmentBuffer &out) const
{
    panicIf(extent.empty(), "ConventionalLayer: empty read");
    out.clear();
    out.push(Segment{extent, extent.start, true});
}

void
ConventionalLayer::placeWriteInto(const SectorExtent &extent,
                                  SegmentBuffer &out)
{
    panicIf(extent.empty(), "ConventionalLayer: empty write");
    out.clear();
    out.push(Segment{extent, extent.start, true});
}

} // namespace logseek::stl
