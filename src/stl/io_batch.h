/**
 * @file
 * Columnar I/O batches for the batch-first replay core.
 *
 * The replay engine processes a trace in blocks of ~256 records
 * instead of one record at a time. Two reusable containers make
 * that allocation-free in steady state:
 *
 *  - trace::IoEventBatch (aliased here): a structure-of-arrays view
 *    of one trace block, owned or zero-copy-bound to an mmap'd
 *    LSKC section — see trace/io_batch.h.
 *  - SegmentBufferBatch: the per-record translation results of a
 *    batch, stored as one flat segment array plus per-record
 *    offsets — the batch analogue of SegmentBuffer.
 *
 * Both clear() without releasing capacity, matching the repo's
 * reuse-the-scratch hot-path idiom.
 */

#ifndef LOGSEEK_STL_IO_BATCH_H
#define LOGSEEK_STL_IO_BATCH_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stl/extent_map.h"
#include "trace/io_batch.h"
#include "util/extent.h"

namespace logseek::stl
{

/** The replay engine's batch type lives with the trace layer now
 *  (it is also the unit TraceInput producers fill); this alias
 *  keeps the historical stl:: spelling working. */
using IoEventBatch = trace::IoEventBatch;

/**
 * Per-record translation results of a batch: one flat Segment
 * array plus record offsets. Native batch implementations append
 * into flat() and seal each record with endRecord(); readers slice
 * with recordBegin()/recordEnd(). Offsets always hold records()+1
 * entries with offsets[0] == 0.
 */
class SegmentBufferBatch
{
  public:
    SegmentBufferBatch() { offsets_.push_back(0); }

    /** Drop all records, keeping both arrays' capacity. */
    void
    clear()
    {
        flat_.clear();
        offsets_.clear();
        offsets_.push_back(0);
    }

    /** Append target for the record currently being produced. */
    SegmentBuffer &flat() { return flat_; }

    /** Seal the current record (its segments are everything pushed
     *  onto flat() since the previous endRecord). */
    void endRecord() { offsets_.push_back(flat_.size()); }

    std::size_t records() const { return offsets_.size() - 1; }

    std::size_t
    recordSize(std::size_t r) const
    {
        return offsets_[r + 1] - offsets_[r];
    }

    const Segment *
    recordBegin(std::size_t r) const
    {
        return flat_.begin() + offsets_[r];
    }

    const Segment *
    recordEnd(std::size_t r) const
    {
        return flat_.begin() + offsets_[r + 1];
    }

  private:
    SegmentBuffer flat_;
    std::vector<std::size_t> offsets_;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_IO_BATCH_H
