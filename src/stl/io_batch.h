/**
 * @file
 * Columnar I/O batches for the batch-first replay core.
 *
 * The replay engine processes a trace in blocks of ~256 records
 * instead of one record at a time. Two reusable containers make
 * that allocation-free in steady state:
 *
 *  - IoEventBatch: a structure-of-arrays view of one trace block
 *    (lba/len as contiguous SectorExtents, timestamps and types as
 *    parallel columns), so a whole run of same-type records can be
 *    handed to the translation layer as one span.
 *  - SegmentBufferBatch: the per-record translation results of a
 *    batch, stored as one flat segment array plus per-record
 *    offsets — the batch analogue of SegmentBuffer.
 *
 * Both clear() without releasing capacity, matching the repo's
 * reuse-the-scratch hot-path idiom.
 */

#ifndef LOGSEEK_STL_IO_BATCH_H
#define LOGSEEK_STL_IO_BATCH_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stl/extent_map.h"
#include "trace/trace.h"
#include "util/extent.h"

namespace logseek::stl
{

/**
 * Structure-of-arrays form of one block of trace records. The
 * extent column doubles as the contiguous span the batched
 * translation API consumes; timestamps and types stay in their own
 * columns so run-splitting scans touch only one byte per record.
 */
class IoEventBatch
{
  public:
    /** Rebuild the columns from trace records [begin, end). */
    void
    buildFrom(const trace::Trace &trace, std::size_t begin,
              std::size_t end)
    {
        extents_.clear();
        timestamps_.clear();
        types_.clear();
        for (std::size_t i = begin; i < end; ++i) {
            const trace::IoRecord &record = trace[i];
            extents_.push_back(record.extent);
            timestamps_.push_back(record.timestampUs);
            types_.push_back(record.type);
        }
    }

    std::size_t size() const { return extents_.size(); }
    bool empty() const { return extents_.empty(); }

    const SectorExtent &extent(std::size_t i) const
    {
        return extents_[i];
    }
    std::uint64_t timestamp(std::size_t i) const
    {
        return timestamps_[i];
    }
    trace::IoType type(std::size_t i) const { return types_[i]; }

    /** Pointer into the contiguous extent column (for spans). */
    const SectorExtent *extentData() const { return extents_.data(); }

    /** One past the last index of the same-type run starting at i. */
    std::size_t
    runEnd(std::size_t i) const
    {
        const trace::IoType head = types_[i];
        std::size_t j = i + 1;
        while (j < types_.size() && types_[j] == head)
            ++j;
        return j;
    }

  private:
    std::vector<SectorExtent> extents_;
    std::vector<std::uint64_t> timestamps_;
    std::vector<trace::IoType> types_;
};

/**
 * Per-record translation results of a batch: one flat Segment
 * array plus record offsets. Native batch implementations append
 * into flat() and seal each record with endRecord(); readers slice
 * with recordBegin()/recordEnd(). Offsets always hold records()+1
 * entries with offsets[0] == 0.
 */
class SegmentBufferBatch
{
  public:
    SegmentBufferBatch() { offsets_.push_back(0); }

    /** Drop all records, keeping both arrays' capacity. */
    void
    clear()
    {
        flat_.clear();
        offsets_.clear();
        offsets_.push_back(0);
    }

    /** Append target for the record currently being produced. */
    SegmentBuffer &flat() { return flat_; }

    /** Seal the current record (its segments are everything pushed
     *  onto flat() since the previous endRecord). */
    void endRecord() { offsets_.push_back(flat_.size()); }

    std::size_t records() const { return offsets_.size() - 1; }

    std::size_t
    recordSize(std::size_t r) const
    {
        return offsets_[r + 1] - offsets_[r];
    }

    const Segment *
    recordBegin(std::size_t r) const
    {
        return flat_.begin() + offsets_[r];
    }

    const Segment *
    recordEnd(std::size_t r) const
    {
        return flat_.begin() + offsets_[r + 1];
    }

  private:
    SegmentBuffer flat_;
    std::vector<std::size_t> offsets_;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_IO_BATCH_H
