/**
 * @file
 * Translation-aware look-ahead-behind prefetching (paper §IV-B,
 * Algorithm 2).
 *
 * When serving a fragment of a fragmented read, the drive also reads
 * the physically preceding (look-behind) and following (look-ahead)
 * sectors into its buffer. Mis-ordered writes (contiguous LBAs
 * written in descending or interleaved order) land physically
 * adjacent but reversed in the log; look-behind turns the resulting
 * missed rotations into buffer hits.
 */

#ifndef LOGSEEK_STL_PREFETCH_H
#define LOGSEEK_STL_PREFETCH_H

#include <cstdint>

#include "disk/pba_cache.h"
#include "util/extent.h"

namespace logseek::stl
{

/** Configuration for the look-ahead-behind prefetcher. */
struct PrefetchConfig
{
    /** Bytes fetched beyond the fragment (look-ahead). */
    std::uint64_t lookAheadBytes = 128 * kKiB;

    /** Bytes fetched before the fragment (look-behind). */
    std::uint64_t lookBehindBytes = 128 * kKiB;

    /**
     * Drive buffer devoted to fetch regions (FIFO replacement).
     * Kept small, like a real drive's segment buffer: look-ahead-
     * behind only needs the current read's neighborhood resident,
     * and a large buffer would double as a read cache, conflating
     * this mechanism with selective caching.
     */
    std::uint64_t bufferBytes = 2 * kMiB;
};

/** Drive-buffer model for look-ahead-behind prefetching. */
class Prefetcher
{
  public:
    explicit Prefetcher(const PrefetchConfig &config = {});

    /**
     * True if the fragment is already resident in the drive buffer
     * (served with no media access). Counters are updated.
     */
    bool lookup(const SectorExtent &physical);

    /**
     * The media region the drive actually reads when fetching this
     * fragment: [pba - behind, pba + count + ahead), clamped at
     * sector 0.
     */
    SectorExtent fetchRegion(const SectorExtent &physical) const;

    /** Record that region was transferred into the drive buffer. */
    void admit(const SectorExtent &region);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t usedBytes() const { return buffer_.usedBytes(); }

    const PrefetchConfig &config() const { return config_; }

  private:
    PrefetchConfig config_;
    disk::PbaRangeCache buffer_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_PREFETCH_H
