/**
 * @file
 * Finite-capacity log-structured translation layer with pluggable
 * garbage collection and multi-stream placement.
 *
 * The paper's model assumes an infinite disk — fair for archival
 * systems that never overwrite — but §I and §IV-A note that on a
 * finite device the log must clean, and that opportunistic
 * defragmentation's "use of free space will eventually necessitate
 * running the cleaning algorithm with its attendant overheads."
 * This layer makes that cost measurable: the log lives in a fixed
 * physical region divided into segments; writes fill each placement
 * stream's open segment; when free segments run low, the configured
 * CleaningPolicy picks victims whose live extents are read and
 * rewritten at the coldest stream's frontier (all visible to the
 * simulator as cleaning traffic via maintenance()).
 *
 * With gc.streams == 1 and the greedy policy (the defaults) the
 * layer is byte-identical to its historical single-frontier form:
 * same placements, same journal image, same cleaning traffic —
 * pinned by a differential test against ReferenceFiniteLog.
 */

#ifndef LOGSEEK_STL_FINITE_LOG_H
#define LOGSEEK_STL_FINITE_LOG_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "stl/extent_map.h"
#include "stl/gc/cleaning_policy.h"
#include "stl/translation_layer.h"
#include "telemetry/metrics.h"

namespace logseek::stl
{

/** Configuration of the finite log. */
struct FiniteLogConfig
{
    /** Physical capacity of the log region in bytes. */
    std::uint64_t capacityBytes = 256 * kMiB;

    /** Cleaning granularity (segment size) in bytes. */
    std::uint64_t segmentBytes = 8 * kMiB;

    /** Start cleaning when free segments drop to this count. */
    std::uint32_t cleanReserveSegments = 2;

    /** Clean until at least this many segments are free. */
    std::uint32_t cleanTargetSegments = 4;

    /** Cleaning policy and placement-stream configuration. */
    gc::GcConfig gc;
};

/**
 * Segmented log with pluggable victim selection. Identity-placed
 * data (never written during the run) lives below the log region
 * and is never cleaned, matching the paper's placement for data
 * written before trace collection began.
 */
class FiniteLogStructuredLayer : public TranslationLayer,
                                 public gc::SegmentStateView
{
  public:
    /**
     * @param identity_end One past the highest workload LBA; the
     *        log region begins here.
     * @param config Capacity, segment size and cleaning policy.
     */
    FiniteLogStructuredLayer(Pba identity_end,
                             const FiniteLogConfig &config = {});

    void translateReadInto(const SectorExtent &extent,
                           SegmentBuffer &out) const override;

    void placeWriteInto(const SectorExtent &extent,
                        SegmentBuffer &out) override;

    void translateReadBatchInto(std::span<const SectorExtent> extents,
                                SegmentBufferBatch &out)
        const override;

    /**
     * Batched placement with no cleaning interleaved — exactly a
     * loop over placeWriteInto. The replay engine does not use this
     * (the layer owes per-record maintenance, see hasMaintenance());
     * it exists for the batch/scalar differential contract.
     */
    void placeWriteBatchInto(std::span<const SectorExtent> extents,
                             SegmentBufferBatch &out) override;

    bool hasMaintenance() const override { return true; }

    std::size_t staticFragmentCount() const override;

    std::string name() const override { return "finite-log"; }

    void attachJournal(SegmentJournal *journal) override
    {
        journal_ = journal;
    }

    /**
     * Replays Placement epochs through the same displaced-range
     * bookkeeping as live appends (forward map, reverse map,
     * per-segment liveness, free flags) and SegmentReset epochs as
     * victim reclaims, then adopts each stream's recorded write
     * pointer and open segment (the owning stream rides in the aux
     * word's high half). A crash between a cleaning pass's
     * re-appends and its SegmentReset recovers to a consistent
     * mid-clean state: the moved extents are live at their new home
     * and the victim is simply not yet free.
     */
    MountStats
    mountFromJournal(const SegmentJournal &journal) override;

    /**
     * Garbage collection: runs while the policy's hysteresis says
     * to (by default, free segments at or below the reserve until
     * the target is restored), returning the cleaning
     * reads/rewrites. fatal() if the log is overcommitted (no
     * cleanable victim can make progress).
     */
    std::vector<MediaAccess> maintenance() override;

    /** Defragmentation support: rewrite a range at the frontier. */
    std::vector<Segment>
    relocate(const SectorExtent &extent)
    {
        SegmentBuffer buffer;
        relocateInto(extent, buffer);
        return {buffer.begin(), buffer.end()};
    }

    /**
     * Allocation-free relocate for the replay hot path. Relocations
     * move already-written (hence presumed cold) data, so they go
     * to the coldest stream and bypass the router's interval
     * inference — a defrag rewrite is not evidence the data is hot.
     */
    void relocateInto(const SectorExtent &extent, SegmentBuffer &out);

    /** First physical sector of the log region. */
    Pba logStart() const { return logStart_; }

    /** Number of cleaning segment reclaims so far. */
    std::uint64_t cleanings() const { return cleanings_; }

    /** Live bytes moved out of GC victims so far. */
    std::uint64_t gcVictimLiveBytes() const
    {
        return gcVictimLiveBytes_;
    }

    /** Total bytes spanned by GC victims so far. */
    std::uint64_t gcVictimSpanBytes() const
    {
        return gcVictimSpanBytes_;
    }

    /** Number of segments currently free. */
    std::uint32_t freeSegments() const;

    /** Total segments in the log region. */
    std::uint32_t segmentCount() const override
    {
        return static_cast<std::uint32_t>(segments_.size());
    }

    /** Sectors per segment. */
    SectorCount segmentSectors() const override
    {
        return segmentSectors_;
    }

    /** True when segment i is on the free list. */
    bool
    segmentFree(std::uint32_t i) const override
    {
        return segments_[i].free;
    }

    /** Live (mapped) sectors in the log. */
    SectorCount liveSectors() const { return map_.mappedSectors(); }

    /** Live sectors in segment i (tests/diagnostics). */
    SectorCount segmentLive(std::uint32_t i) const override;

    /** True when segment i is some stream's open segment. */
    bool segmentOpen(std::uint32_t i) const override;

    /** Logical tick of the last write into segment i. */
    std::uint64_t
    segmentLastWrite(std::uint32_t i) const override
    {
        return segments_[i].lastWrite;
    }

    /** Current logical tick (one per append). */
    std::uint64_t now() const override { return tick_; }

    /** The active cleaning policy. */
    const gc::CleaningPolicy &policy() const { return *policy_; }

    /** Number of placement streams. */
    std::uint32_t
    streamCount() const
    {
        return static_cast<std::uint32_t>(streams_.size());
    }

    /** True when stream sid has opened a segment. */
    bool
    streamOpened(std::uint32_t sid) const
    {
        return streams_[sid].opened;
    }

    /** Open segment of stream sid (meaningful when opened). */
    std::uint32_t
    streamOpenSegment(std::uint32_t sid) const
    {
        return streams_[sid].openSegment;
    }

    /** Write pointer of stream sid (meaningful when opened). */
    Pba
    streamWritePointer(std::uint32_t sid) const
    {
        return streams_[sid].writePtr;
    }

    /** Index of the currently open segment (stream 0). */
    std::uint32_t openSegment() const
    {
        return streams_[0].openSegment;
    }

    /** Physical sector stream 0's next append will start at. */
    Pba writePointer() const { return streams_[0].writePtr; }

    /** Forward map (read-only; Fsck and diagnostics). */
    const ExtentMap &extentMap() const { return map_; }

    /** Reverse map (read-only; Fsck and diagnostics). */
    const std::map<Pba, std::pair<Lba, SectorCount>> &
    reverseMap() const
    {
        return reverse_;
    }

  private:
    struct SegmentState
    {
        SectorCount live = 0;
        bool free = true;

        /** Logical tick of the last write (0 = never written). */
        std::uint64_t lastWrite = 0;
    };

    struct StreamState
    {
        std::uint32_t openSegment = 0;
        Pba writePtr = 0;

        /** False until the stream claims its first segment. */
        bool opened = false;
    };

    /** Stream cleaning re-appends and relocations land in. */
    std::uint32_t
    coldStream() const
    {
        return static_cast<std::uint32_t>(streams_.size()) - 1;
    }

    /** Segment index of a log sector. */
    std::uint32_t segmentOf(Pba pba) const;

    /** Adjust per-segment liveness for a physical range. */
    void adjustLive(const SectorExtent &range, bool add);

    /** Remove a physical range from the reverse (pba->lba) map. */
    void removeReverse(const SectorExtent &range);

    /** Open a free segment for stream sid; fatal if none. */
    void openFreeSegment(std::uint32_t sid);

    /**
     * Append count sectors of lba at stream sid's frontier,
     * updating both maps and liveness; pushes the placed segments
     * (split at segment boundaries) onto `out` without clearing it.
     * Does not run cleaning.
     */
    void append(Lba lba, SectorCount count, SegmentBuffer &out,
                std::uint32_t sid);

    FiniteLogConfig config_;
    Pba logStart_;
    SectorCount segmentSectors_;
    std::vector<SegmentState> segments_;

    /** Forward map: lba -> log pba. */
    ExtentMap map_;

    /** Reverse map: log pba -> (lba, count); entries disjoint. */
    std::map<Pba, std::pair<Lba, SectorCount>> reverse_;

    std::vector<StreamState> streams_;
    std::uint64_t cleanings_ = 0;
    std::uint64_t tick_ = 0;
    std::uint64_t gcVictimLiveBytes_ = 0;
    std::uint64_t gcVictimSpanBytes_ = 0;

    /** Victim selector + hysteresis; never null. */
    std::unique_ptr<gc::CleaningPolicy> policy_;

    /** Host-write classifier; engaged only when streams > 1. */
    std::optional<gc::StreamRouter> router_;

    /** Reusable scratches: displaced ranges from mapRange and the
     *  per-entry placements during cleaning. clear() keeps their
     *  capacity, so steady-state appends do not allocate. */
    std::vector<SectorExtent> displacedScratch_;
    SegmentBuffer cleanScratch_;

    /** Durable metadata journal; null = volatile (the default). */
    SegmentJournal *journal_ = nullptr;

    /** Reusable per-op entry scratch for journal records. */
    std::vector<JournalEntry> journalScratch_;

    /** Constructor-resolved gc_* telemetry handles. */
    telemetry::Counter *gcReclaims_ = nullptr;
    telemetry::Counter *gcMovedBytes_ = nullptr;
    telemetry::LatencyHistogram *gcVictimUtilization_ = nullptr;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_FINITE_LOG_H
