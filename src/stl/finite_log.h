/**
 * @file
 * Finite-capacity log-structured translation layer with greedy
 * garbage collection.
 *
 * The paper's model assumes an infinite disk — fair for archival
 * systems that never overwrite — but §I and §IV-A note that on a
 * finite device the log must clean, and that opportunistic
 * defragmentation's "use of free space will eventually necessitate
 * running the cleaning algorithm with its attendant overheads."
 * This layer makes that cost measurable: the log lives in a fixed
 * physical region divided into segments; writes fill an open
 * segment; when free segments run low, greedy cleaning picks the
 * segment with the least live data, reads its live extents and
 * rewrites them at the frontier (all visible to the simulator as
 * cleaning traffic via maintenance()).
 */

#ifndef LOGSEEK_STL_FINITE_LOG_H
#define LOGSEEK_STL_FINITE_LOG_H

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "stl/extent_map.h"
#include "stl/translation_layer.h"

namespace logseek::stl
{

/** Configuration of the finite log. */
struct FiniteLogConfig
{
    /** Physical capacity of the log region in bytes. */
    std::uint64_t capacityBytes = 256 * kMiB;

    /** Cleaning granularity (segment size) in bytes. */
    std::uint64_t segmentBytes = 8 * kMiB;

    /** Start cleaning when free segments drop to this count. */
    std::uint32_t cleanReserveSegments = 2;

    /** Clean until at least this many segments are free. */
    std::uint32_t cleanTargetSegments = 4;
};

/**
 * Segmented log with greedy victim selection. Identity-placed data
 * (never written during the run) lives below the log region and is
 * never cleaned, matching the paper's placement for data written
 * before trace collection began.
 */
class FiniteLogStructuredLayer : public TranslationLayer
{
  public:
    /**
     * @param identity_end One past the highest workload LBA; the
     *        log region begins here.
     * @param config Capacity, segment size and cleaning policy.
     */
    FiniteLogStructuredLayer(Pba identity_end,
                             const FiniteLogConfig &config = {});

    void translateReadInto(const SectorExtent &extent,
                           SegmentBuffer &out) const override;

    void placeWriteInto(const SectorExtent &extent,
                        SegmentBuffer &out) override;

    void translateReadBatchInto(std::span<const SectorExtent> extents,
                                SegmentBufferBatch &out)
        const override;

    /**
     * Batched placement with no cleaning interleaved — exactly a
     * loop over placeWriteInto. The replay engine does not use this
     * (the layer owes per-record maintenance, see hasMaintenance());
     * it exists for the batch/scalar differential contract.
     */
    void placeWriteBatchInto(std::span<const SectorExtent> extents,
                             SegmentBufferBatch &out) override;

    bool hasMaintenance() const override { return true; }

    std::size_t staticFragmentCount() const override;

    std::string name() const override { return "finite-log"; }

    void attachJournal(SegmentJournal *journal) override
    {
        journal_ = journal;
    }

    /**
     * Replays Placement epochs through the same displaced-range
     * bookkeeping as live appends (forward map, reverse map,
     * per-segment liveness, free flags) and SegmentReset epochs as
     * victim reclaims, then adopts the recorded write pointer and
     * open segment. A crash between a cleaning pass's re-appends
     * and its SegmentReset recovers to a consistent mid-clean
     * state: the moved extents are live at their new home and the
     * victim is simply not yet free.
     */
    MountStats
    mountFromJournal(const SegmentJournal &journal) override;

    /**
     * Greedy garbage collection: runs while free segments are at or
     * below the reserve, returning the cleaning reads/rewrites.
     * fatal() if the log is overcommitted (no cleanable victim can
     * make progress).
     */
    std::vector<MediaAccess> maintenance() override;

    /** Defragmentation support: rewrite a range at the frontier. */
    std::vector<Segment>
    relocate(const SectorExtent &extent)
    {
        return placeWrite(extent);
    }

    /** Allocation-free relocate for the replay hot path. */
    void
    relocateInto(const SectorExtent &extent, SegmentBuffer &out)
    {
        placeWriteInto(extent, out);
    }

    /** First physical sector of the log region. */
    Pba logStart() const { return logStart_; }

    /** Number of cleaning segment reclaims so far. */
    std::uint64_t cleanings() const { return cleanings_; }

    /** Number of segments currently free. */
    std::uint32_t freeSegments() const;

    /** Total segments in the log region. */
    std::uint32_t segmentCount() const
    {
        return static_cast<std::uint32_t>(segments_.size());
    }

    /** Sectors per segment. */
    SectorCount segmentSectors() const { return segmentSectors_; }

    /** True when segment i is on the free list. */
    bool
    segmentFree(std::uint32_t i) const
    {
        return segments_[i].free;
    }

    /** Live (mapped) sectors in the log. */
    SectorCount liveSectors() const { return map_.mappedSectors(); }

    /** Live sectors in segment i (tests/diagnostics). */
    SectorCount segmentLive(std::uint32_t i) const;

    /** Index of the currently open segment. */
    std::uint32_t openSegment() const { return openSegment_; }

    /** Physical sector the next append will start at. */
    Pba writePointer() const { return writePtr_; }

    /** Forward map (read-only; Fsck and diagnostics). */
    const ExtentMap &extentMap() const { return map_; }

    /** Reverse map (read-only; Fsck and diagnostics). */
    const std::map<Pba, std::pair<Lba, SectorCount>> &
    reverseMap() const
    {
        return reverse_;
    }

  private:
    struct SegmentState
    {
        SectorCount live = 0;
        bool free = true;
    };

    /** Segment index of a log sector. */
    std::uint32_t segmentOf(Pba pba) const;

    /** Adjust per-segment liveness for a physical range. */
    void adjustLive(const SectorExtent &range, bool add);

    /** Remove a physical range from the reverse (pba->lba) map. */
    void removeReverse(const SectorExtent &range);

    /** Pick a new open segment from the free list; fatal if none. */
    void openFreeSegment();

    /**
     * Append count sectors of lba at the frontier, updating both
     * maps and liveness; pushes the placed segments (split at
     * segment boundaries) onto `out` without clearing it. Does not
     * run cleaning.
     */
    void append(Lba lba, SectorCount count, SegmentBuffer &out);

    FiniteLogConfig config_;
    Pba logStart_;
    SectorCount segmentSectors_;
    std::vector<SegmentState> segments_;

    /** Forward map: lba -> log pba. */
    ExtentMap map_;

    /** Reverse map: log pba -> (lba, count); entries disjoint. */
    std::map<Pba, std::pair<Lba, SectorCount>> reverse_;

    std::uint32_t openSegment_ = 0;
    Pba writePtr_;
    std::uint64_t cleanings_ = 0;

    /** Reusable scratches: displaced ranges from mapRange and the
     *  per-entry placements during cleaning. clear() keeps their
     *  capacity, so steady-state appends do not allocate. */
    std::vector<SectorExtent> displacedScratch_;
    SegmentBuffer cleanScratch_;

    /** Durable metadata journal; null = volatile (the default). */
    SegmentJournal *journal_ = nullptr;

    /** Reusable per-op entry scratch for journal records. */
    std::vector<JournalEntry> journalScratch_;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_FINITE_LOG_H
