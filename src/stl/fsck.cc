#include "fsck.h"

#include <algorithm>
#include <utility>

#include "stl/extent_map.h"
#include "stl/finite_log.h"
#include "stl/log_structured.h"
#include "stl/media_cache.h"
#include "stl/sharded_translation.h"
#include "telemetry/metrics.h"

namespace logseek::stl
{

namespace
{

std::string
formatEntry(const JournalEntry &entry)
{
    return "(lba " + std::to_string(entry.lba) + " -> pba " +
           std::to_string(entry.pba) + ", " +
           std::to_string(entry.count) + " sectors)";
}

void
report(FsckReport &out, std::string check, std::string detail)
{
    out.violations.push_back(
        FsckViolation{std::move(check), std::move(detail)});
}

std::vector<JournalEntry>
collectEntries(const ExtentMap &map)
{
    std::vector<JournalEntry> entries;
    entries.reserve(map.entryCount());
    map.forEachEntry([&](Lba lba, Pba pba, SectorCount count) {
        entries.push_back({lba, pba, count});
    });
    return entries;
}

/** Merge logically and physically adjacent runs so two maps with
 *  different internal split points compare by meaning, not shape
 *  (the shard union splits at stripe boundaries, for example). */
void
coalesce(std::vector<JournalEntry> &entries)
{
    if (entries.size() < 2)
        return;
    std::size_t out = 0;
    for (std::size_t i = 1; i < entries.size(); ++i) {
        JournalEntry &last = entries[out];
        const JournalEntry &next = entries[i];
        if (last.lba + last.count == next.lba &&
            last.pba + last.count == next.pba)
            last.count += next.count;
        else
            entries[++out] = next;
    }
    entries.resize(out + 1);
}

void
compareEntries(FsckReport &out, const char *check,
               std::vector<JournalEntry> expected,
               std::vector<JournalEntry> actual)
{
    coalesce(expected);
    coalesce(actual);
    out.checkedEntries += expected.size();
    if (expected.size() != actual.size()) {
        report(out, check,
               "entry count mismatch: journal replay has " +
                   std::to_string(expected.size()) +
                   " runs, layer has " +
                   std::to_string(actual.size()));
        return;
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
        if (expected[i] == actual[i])
            continue;
        report(out, check,
               "run " + std::to_string(i) +
                   " diverges: journal replay " +
                   formatEntry(expected[i]) + ", layer " +
                   formatEntry(actual[i]));
        return;
    }
}

void
checkFrontier(FsckReport &out, const JournalScan &scan,
              Pba log_start, Pba frontier, std::uint64_t crossings)
{
    Pba want_frontier = log_start;
    std::uint64_t want_crossings = 0;
    if (!scan.records.empty()) {
        want_frontier = scan.records.back().frontierAfter;
        want_crossings = scan.records.back().aux;
    }
    if (frontier != want_frontier)
        report(out, "frontier-alignment",
               "write frontier at " + std::to_string(frontier) +
                   ", last journal epoch recorded " +
                   std::to_string(want_frontier));
    if (crossings != want_crossings)
        report(out, "zone-crossings",
               "layer crossed " + std::to_string(crossings) +
                   " zone boundaries, journal recorded " +
                   std::to_string(want_crossings));
}

void
checkPlacementBounds(FsckReport &out,
                     const std::vector<JournalEntry> &entries,
                     Pba log_start, Pba frontier)
{
    for (const JournalEntry &entry : entries) {
        if (entry.pba >= log_start &&
            entry.pba + entry.count <= frontier)
            continue;
        report(out, "on-log-bounds",
               "mapped run " + formatEntry(entry) +
                   " outside the written log [" +
                   std::to_string(log_start) + ", " +
                   std::to_string(frontier) + ")");
        return;
    }
}

void
checkLogStructured(const LogStructuredLayer &layer,
                   const JournalScan &scan, FsckReport &out)
{
    ExtentMap expected;
    for (const JournalRecord &record : scan.records) {
        if (record.kind != JournalRecordKind::Placement) {
            report(out, "record-kind",
                   "log-structured journal holds a non-placement "
                   "epoch " +
                       std::to_string(record.epoch));
            continue;
        }
        for (const JournalEntry &entry : record.entries)
            expected.mapRange(entry.lba, entry.pba, entry.count);
    }
    compareEntries(out, "map-log-agreement",
                   collectEntries(expected),
                   collectEntries(layer.extentMap()));
    checkFrontier(out, scan, layer.logStart(),
                  layer.writeFrontier(), layer.zoneCrossings());
    checkPlacementBounds(out, collectEntries(layer.extentMap()),
                         layer.logStart(), layer.writeFrontier());
}

void
checkSharded(const ShardedTranslation &layer,
             const JournalScan &scan, FsckReport &out)
{
    ExtentMap expected;
    for (const JournalRecord &record : scan.records) {
        if (record.kind != JournalRecordKind::Placement) {
            report(out, "record-kind",
                   "sharded journal holds a non-placement epoch " +
                       std::to_string(record.epoch));
            continue;
        }
        for (const JournalEntry &entry : record.entries)
            expected.mapRange(entry.lba, entry.pba, entry.count);
    }

    // Stripe containment plus the union compare: entries must live
    // inside their stripe, and the concatenated per-shard maps must
    // equal the single-map replay once boundary splits coalesce.
    std::vector<JournalEntry> actual;
    for (std::size_t shard = 0; shard < layer.shardCount();
         ++shard) {
        const Lba stripe_start = shard * layer.shardWidth();
        const Lba stripe_end = layer.shardEnd(shard);
        layer.shardMap(shard).forEachEntry(
            [&](Lba lba, Pba pba, SectorCount count) {
                if (lba < stripe_start || lba + count > stripe_end)
                    report(out, "shard-stripe",
                           "shard " + std::to_string(shard) +
                               " holds run " +
                               formatEntry({lba, pba, count}) +
                               " outside its stripe [" +
                               std::to_string(stripe_start) +
                               ", " +
                               std::to_string(stripe_end) + ")");
                actual.push_back({lba, pba, count});
            });
    }
    compareEntries(out, "map-log-agreement",
                   collectEntries(expected), std::move(actual));
    checkFrontier(out, scan, layer.logStart(),
                  layer.writeFrontier(), layer.zoneCrossings());
}

void
checkFiniteLog(const FiniteLogStructuredLayer &layer,
               const JournalScan &scan, FsckReport &out)
{
    ExtentMap expected;
    std::uint64_t expected_cleanings = 0;
    // Per-stream expected frontier state replayed from the journal.
    // Stream 0 opens segment 0 at construction; the rest open
    // lazily on their first append. The owning stream of each
    // record rides in the aux word's high half.
    struct StreamWant
    {
        Pba ptr = 0;
        std::uint32_t open = 0;
        bool opened = false;
    };
    std::vector<StreamWant> want(layer.streamCount());
    want[0] = {layer.logStart(), 0, true};
    for (const JournalRecord &record : scan.records) {
        const auto sid =
            static_cast<std::uint32_t>(record.aux >> 32);
        switch (record.kind) {
        case JournalRecordKind::Placement:
            for (const JournalEntry &entry : record.entries)
                expected.mapRange(entry.lba, entry.pba,
                                  entry.count);
            if (sid >= want.size()) {
                report(out, "stream-bounds",
                       "journal epoch " +
                           std::to_string(record.epoch) +
                           " places into stream " +
                           std::to_string(sid) + " of " +
                           std::to_string(want.size()));
                break;
            }
            want[sid] = {record.frontierAfter,
                         static_cast<std::uint32_t>(record.aux),
                         true};
            break;
        case JournalRecordKind::SegmentReset:
            ++expected_cleanings;
            if (sid >= want.size()) {
                report(out, "stream-bounds",
                       "journal epoch " +
                           std::to_string(record.epoch) +
                           " resets via stream " +
                           std::to_string(sid) + " of " +
                           std::to_string(want.size()));
                break;
            }
            // The reset's frontier belongs to the cleaning stream;
            // a fully-dead victim moves nothing and records the
            // logStart sentinel while the stream is still closed.
            if (want[sid].opened)
                want[sid].ptr = record.frontierAfter;
            break;
        case JournalRecordKind::MergeReset:
            report(out, "record-kind",
                   "finite-log journal holds a merge epoch " +
                       std::to_string(record.epoch));
            break;
        }
    }
    compareEntries(out, "map-log-agreement",
                   collectEntries(expected),
                   collectEntries(layer.extentMap()));
    if (layer.cleanings() != expected_cleanings)
        report(out, "cleaning-count",
               "layer reclaimed " +
                   std::to_string(layer.cleanings()) +
                   " segments, journal recorded " +
                   std::to_string(expected_cleanings));
    for (std::uint32_t sid = 0; sid < layer.streamCount();
         ++sid) {
        if (layer.streamOpened(sid) != want[sid].opened) {
            report(out, "stream-open",
                   "stream " + std::to_string(sid) +
                       (layer.streamOpened(sid)
                            ? " is open, journal never opened it"
                            : " is closed, journal opened it"));
            continue;
        }
        if (!layer.streamOpened(sid))
            continue;
        if (layer.streamWritePointer(sid) != want[sid].ptr)
            report(out, "frontier-alignment",
                   "stream " + std::to_string(sid) +
                       " write pointer at " +
                       std::to_string(
                           layer.streamWritePointer(sid)) +
                       ", last journal epoch recorded " +
                       std::to_string(want[sid].ptr));
        if (layer.streamOpenSegment(sid) != want[sid].open)
            report(out, "open-segment",
                   "stream " + std::to_string(sid) +
                       " open segment " +
                       std::to_string(
                           layer.streamOpenSegment(sid)) +
                       ", journal recorded " +
                       std::to_string(want[sid].open));

        // Each open segment must be off the free list and must
        // contain its stream's write pointer (or sit exactly one
        // past its end, the lazy open-on-next-append state).
        if (layer.segmentFree(layer.streamOpenSegment(sid)))
            report(out, "open-segment",
                   "stream " + std::to_string(sid) +
                       " open segment " +
                       std::to_string(
                           layer.streamOpenSegment(sid)) +
                       " is on the free list");
        const Pba open_start =
            layer.logStart() +
            static_cast<Pba>(layer.streamOpenSegment(sid)) *
                layer.segmentSectors();
        if (layer.streamWritePointer(sid) < open_start ||
            layer.streamWritePointer(sid) >
                open_start + layer.segmentSectors())
            report(out, "frontier-alignment",
                   "stream " + std::to_string(sid) +
                       " write pointer " +
                       std::to_string(
                           layer.streamWritePointer(sid)) +
                       " outside open segment " +
                       std::to_string(
                           layer.streamOpenSegment(sid)));
    }

    // Opened streams must own distinct open segments — two
    // frontiers in one segment would interleave their appends.
    for (std::uint32_t a = 0; a < layer.streamCount(); ++a) {
        if (!layer.streamOpened(a))
            continue;
        for (std::uint32_t b = a + 1; b < layer.streamCount();
             ++b) {
            if (layer.streamOpened(b) &&
                layer.streamOpenSegment(a) ==
                    layer.streamOpenSegment(b))
                report(out, "stream-open-distinct",
                       "streams " + std::to_string(a) + " and " +
                           std::to_string(b) +
                           " share open segment " +
                           std::to_string(
                               layer.streamOpenSegment(a)));
        }
    }

    // GC liveness: the per-segment live counters must sum to
    // exactly the mapped sectors — cleaning may move data but
    // never lose or duplicate liveness.
    SectorCount live_total = 0;
    for (std::uint32_t i = 0; i < layer.segmentCount(); ++i)
        live_total += layer.segmentLive(i);
    if (live_total != layer.extentMap().mappedSectors())
        report(out, "gc-liveness",
               "segments count " + std::to_string(live_total) +
                   " live sectors, forward map holds " +
                   std::to_string(
                       layer.extentMap().mappedSectors()));

    // Forward/reverse bijection: the reverse map, re-sorted by LBA,
    // must describe exactly the forward map.
    std::vector<JournalEntry> from_reverse;
    from_reverse.reserve(layer.reverseMap().size());
    for (const auto &[pba, entry] : layer.reverseMap())
        from_reverse.push_back({entry.first, pba, entry.second});
    std::sort(from_reverse.begin(), from_reverse.end(),
              [](const JournalEntry &a, const JournalEntry &b) {
                  return a.lba < b.lba;
              });
    compareEntries(out, "reverse-bijection",
                   collectEntries(layer.extentMap()),
                   std::move(from_reverse));

    // Liveness accounting: per-segment live counters must equal the
    // reverse-resident sectors in that segment, and free segments
    // must hold no live data.
    std::vector<SectorCount> live(layer.segmentCount(), 0);
    for (const auto &[pba, entry] : layer.reverseMap()) {
        Pba cursor = pba;
        const Pba end = pba + entry.second;
        while (cursor < end) {
            const auto seg = static_cast<std::uint32_t>(
                (cursor - layer.logStart()) /
                layer.segmentSectors());
            const Pba seg_end =
                layer.logStart() +
                (static_cast<Pba>(seg) + 1) *
                    layer.segmentSectors();
            const Pba piece_end = std::min(end, seg_end);
            live[seg] += piece_end - cursor;
            cursor = piece_end;
        }
    }
    for (std::uint32_t i = 0; i < layer.segmentCount(); ++i) {
        if (layer.segmentLive(i) != live[i])
            report(out, "liveness-accounting",
                   "segment " + std::to_string(i) + " counts " +
                       std::to_string(layer.segmentLive(i)) +
                       " live sectors, reverse map holds " +
                       std::to_string(live[i]));
        if (layer.segmentFree(i) && layer.segmentLive(i) != 0)
            report(out, "free-segment-live",
                   "free segment " + std::to_string(i) +
                       " still counts " +
                       std::to_string(layer.segmentLive(i)) +
                       " live sectors");
    }
}

void
checkMediaCache(const MediaCacheLayer &layer,
                const JournalScan &scan, FsckReport &out)
{
    ExtentMap expected;
    SectorCount expected_used = 0;
    std::uint64_t expected_merges = 0;
    for (const JournalRecord &record : scan.records) {
        switch (record.kind) {
        case JournalRecordKind::Placement:
            for (const JournalEntry &entry : record.entries) {
                expected.mapRange(entry.lba, entry.pba,
                                  entry.count);
                expected_used += entry.count;
            }
            break;
        case JournalRecordKind::MergeReset:
            expected = ExtentMap();
            expected_used = 0;
            ++expected_merges;
            if (record.aux != expected_merges)
                report(out, "merge-count",
                       "merge epoch " +
                           std::to_string(record.epoch) +
                           " recorded merge #" +
                           std::to_string(record.aux) +
                           ", replay expected #" +
                           std::to_string(expected_merges));
            break;
        case JournalRecordKind::SegmentReset:
            report(out, "record-kind",
                   "media-cache journal holds a segment-reset "
                   "epoch " +
                       std::to_string(record.epoch));
            break;
        }
    }
    compareEntries(out, "map-log-agreement",
                   collectEntries(expected),
                   collectEntries(layer.extentMap()));
    if (layer.cacheUsedSectors() != expected_used)
        report(out, "cache-accounting",
               "cache holds " +
                   std::to_string(layer.cacheUsedSectors()) +
                   " dirty sectors, journal replay expected " +
                   std::to_string(expected_used));
    if (layer.mergeCount() != expected_merges)
        report(out, "merge-count",
               "layer merged " +
                   std::to_string(layer.mergeCount()) +
                   " times, journal recorded " +
                   std::to_string(expected_merges));
    if (layer.cachePointer() !=
        layer.cacheStart() + layer.cacheUsedSectors())
        report(out, "cache-accounting",
               "cache pointer " +
                   std::to_string(layer.cachePointer()) +
                   " disagrees with cacheStart + used = " +
                   std::to_string(layer.cacheStart() +
                                  layer.cacheUsedSectors()));
    checkPlacementBounds(out, collectEntries(layer.extentMap()),
                         layer.cacheStart(),
                         layer.cachePointer());
}

} // namespace

std::string
FsckReport::toString() const
{
    if (violations.empty())
        return "fsck: clean (" +
               std::to_string(checkedEntries) +
               " entries checked)";
    std::string text = "fsck: " +
                       std::to_string(violations.size()) +
                       " violation(s):";
    for (const FsckViolation &violation : violations)
        text += "\n  [" + violation.check + "] " +
                violation.detail;
    return text;
}

FsckReport
Fsck::check(const TranslationLayer &layer,
            const SegmentJournal &journal)
{
    FsckReport out;
    const JournalScan scan = scanJournal(journal.image());
    if (const auto *sharded =
            dynamic_cast<const ShardedTranslation *>(&layer)) {
        checkSharded(*sharded, scan, out);
    } else if (const auto *log =
                   dynamic_cast<const LogStructuredLayer *>(
                       &layer)) {
        checkLogStructured(*log, scan, out);
    } else if (const auto *finite = dynamic_cast<
                   const FiniteLogStructuredLayer *>(&layer)) {
        checkFiniteLog(*finite, scan, out);
    } else if (const auto *cache =
                   dynamic_cast<const MediaCacheLayer *>(
                       &layer)) {
        checkMediaCache(*cache, scan, out);
    } else if (!journal.empty()) {
        // Identity layers journal nothing; a non-empty journal
        // means someone attached the wrong one.
        report(out, "conventional-journal",
               "layer '" + layer.name() +
                   "' has no durable state but the journal holds " +
                   std::to_string(scan.segmentsScanned) +
                   " frames");
    }
    if (!out.violations.empty())
        telemetry::Registry::global()
            .counter("fsck_violations_total")
            .add(out.violations.size());
    return out;
}

} // namespace logseek::stl
