#include "segment_journal.h"

#include "telemetry/metrics.h"
#include "util/checkpoint.h"
#include "util/logging.h"

namespace logseek::stl
{

namespace
{

void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

bool
getU8(std::string_view &in, std::uint8_t &v)
{
    if (in.size() < 1)
        return false;
    v = static_cast<std::uint8_t>(in[0]);
    in.remove_prefix(1);
    return true;
}

bool
getU32(std::string_view &in, std::uint32_t &v)
{
    if (in.size() < 4)
        return false;
    v = 0;
    for (std::size_t i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(in[i]))
             << (8 * i);
    in.remove_prefix(4);
    return true;
}

bool
getU64(std::string_view &in, std::uint64_t &v)
{
    if (in.size() < 8)
        return false;
    v = 0;
    for (std::size_t i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[i]))
             << (8 * i);
    in.remove_prefix(8);
    return true;
}

/** splitmix64 finalizer for the seeded tear point. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Frame overhead of the LCKP framing: magic + length + CRC. */
constexpr std::size_t kFrameHeader = 12;

} // namespace

std::string
encodeJournalRecord(const JournalRecord &record)
{
    std::string out;
    out.reserve(1 + 8 * 3 + 4 + record.entries.size() * 24);
    putU8(out, static_cast<std::uint8_t>(record.kind));
    putU64(out, record.epoch);
    putU64(out, record.frontierAfter);
    putU64(out, record.aux);
    putU32(out, static_cast<std::uint32_t>(record.entries.size()));
    for (const JournalEntry &entry : record.entries) {
        putU64(out, entry.lba);
        putU64(out, entry.pba);
        putU64(out, entry.count);
    }
    return out;
}

bool
decodeJournalRecord(std::string_view payload, JournalRecord &out)
{
    std::uint8_t kind = 0;
    std::uint32_t count = 0;
    if (!getU8(payload, kind) || !getU64(payload, out.epoch) ||
        !getU64(payload, out.frontierAfter) ||
        !getU64(payload, out.aux) || !getU32(payload, count))
        return false;
    if (kind < static_cast<std::uint8_t>(
                   JournalRecordKind::Placement) ||
        kind > static_cast<std::uint8_t>(
                   JournalRecordKind::MergeReset))
        return false;
    out.kind = static_cast<JournalRecordKind>(kind);
    if (payload.size() != static_cast<std::size_t>(count) * 24)
        return false;
    out.entries.clear();
    out.entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        JournalEntry entry;
        getU64(payload, entry.lba);
        getU64(payload, entry.pba);
        getU64(payload, entry.count);
        out.entries.push_back(entry);
    }
    return payload.empty();
}

JournalScan
scanJournal(std::string_view image)
{
    JournalScan scan;
    const CheckpointLoad load = parseCheckpoint(image);
    scan.segmentsScanned = load.records.size();
    scan.damagedFrames = load.damagedFrames;
    scan.tornTail = load.tornTail;
    scan.bytesDropped = load.bytesDropped;

    // Replay intact frames while the epoch chain stays unbroken;
    // the first gap (a damaged frame in the middle) or undecodable
    // payload truncates everything after the last consistent epoch
    // — a log scan cannot trust state that depends on a missing op.
    std::uint64_t expected = 1;
    std::size_t applied = 0;
    for (const std::string &payload : load.records) {
        JournalRecord record;
        if (!decodeJournalRecord(payload, record) ||
            record.epoch != expected)
            break;
        scan.records.push_back(std::move(record));
        ++expected;
        ++applied;
    }
    scan.truncatedEpochs = load.records.size() - applied;

    auto &registry = telemetry::Registry::global();
    registry.counter("recovery_segments_scanned_total")
        .add(scan.segmentsScanned);
    if (scan.tornTail)
        registry.counter("recovery_torn_tails_total").add();
    return scan;
}

void
SegmentJournal::record(JournalRecordKind kind, Pba frontier_after,
                       std::uint64_t aux,
                       std::span<const JournalEntry> entries)
{
    JournalRecord rec;
    rec.kind = kind;
    rec.epoch = ++epoch_;
    rec.frontierAfter = frontier_after;
    rec.aux = aux;
    rec.entries.assign(entries.begin(), entries.end());
    appendCheckpointFrame(image_, encodeJournalRecord(rec));
}

void
SegmentJournal::clear()
{
    image_.clear();
    epoch_ = 0;
}

void
SegmentJournal::tearTail(std::uint64_t seed)
{
    if (image_.empty())
        return;

    // Locate the final frame by walking the intact framing; a
    // journal image is wholly writer-produced, so every frame has a
    // valid header (the tear itself is what introduces damage).
    std::size_t last_start = 0;
    std::size_t offset = 0;
    while (offset < image_.size()) {
        panicIf(offset + kFrameHeader > image_.size(),
                "SegmentJournal: corrupt frame header in tearTail");
        std::uint32_t payload_len = 0;
        for (std::size_t i = 0; i < 4; ++i)
            payload_len |=
                static_cast<std::uint32_t>(
                    static_cast<unsigned char>(
                        image_[offset + 4 + i]))
                << (8 * i);
        last_start = offset;
        offset += kFrameHeader + payload_len;
    }
    panicIf(offset != image_.size(),
            "SegmentJournal: frame walk overran the image");

    const std::size_t last_len = image_.size() - last_start;
    const std::uint64_t h = mix64(seed ^ image_.size());
    const std::size_t keep =
        last_start + static_cast<std::size_t>(h % (last_len + 1));
    image_.resize(keep);
}

} // namespace logseek::stl
