#include "prefetch.h"

namespace logseek::stl
{

Prefetcher::Prefetcher(const PrefetchConfig &config)
    : config_(config),
      buffer_(config.bufferBytes, disk::EvictionPolicy::Fifo)
{
}

bool
Prefetcher::lookup(const SectorExtent &physical)
{
    if (buffer_.contains(physical)) {
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

SectorExtent
Prefetcher::fetchRegion(const SectorExtent &physical) const
{
    const SectorCount behind =
        bytesToSectors(config_.lookBehindBytes);
    const SectorCount ahead = bytesToSectors(config_.lookAheadBytes);
    const std::uint64_t start =
        physical.start >= behind ? physical.start - behind : 0;
    return SectorExtent{start, physical.end() + ahead - start};
}

void
Prefetcher::admit(const SectorExtent &region)
{
    buffer_.insert(region);
}

} // namespace logseek::stl
