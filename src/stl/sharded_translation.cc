#include "sharded_translation.h"

#include <algorithm>
#include <limits>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace logseek::stl
{

ShardedTranslation::ShardedTranslation(
    Pba initial_frontier, std::size_t shards,
    std::optional<ZoneConfig> zones)
    : logStart_(initial_frontier),
      frontier_(initial_frontier, zones)
{
    panicIf(shards == 0,
            "ShardedTranslation: need at least one shard");
    panicIf(initial_frontier == 0,
            "ShardedTranslation: the workload address space is "
            "empty");
    shardWidth_ = std::max<SectorCount>(
        1, (logStart_ + shards - 1) / shards);
    maps_.resize(shards);
}

std::size_t
ShardedTranslation::shardOf(Lba lba) const
{
    return std::min<std::size_t>(lba / shardWidth_,
                                 maps_.size() - 1);
}

Lba
ShardedTranslation::shardEnd(std::size_t shard) const
{
    if (shard + 1 == maps_.size())
        return std::numeric_limits<Lba>::max();
    return (shard + 1) * shardWidth_;
}

void
ShardedTranslation::mapSharded(Lba lba, Pba placed,
                               SectorCount count)
{
    Lba cursor = lba;
    const Lba end = lba + count;
    while (cursor < end) {
        const std::size_t shard = shardOf(cursor);
        const Lba limit = std::min(end, shardEnd(shard));
        maps_[shard].mapRange(cursor, placed + (cursor - lba),
                              limit - cursor);
        cursor = limit;
    }
}

void
ShardedTranslation::translateAppendSharded(
    const SectorExtent &extent, SegmentBuffer &out) const
{
    Lba cursor = extent.start;
    const Lba end = extent.end();
    while (cursor < end) {
        const std::size_t shard = shardOf(cursor);
        const Lba limit = std::min(end, shardEnd(shard));
        maps_[shard].translateAppend(
            SectorExtent{cursor, limit - cursor}, out);
        cursor = limit;
    }
}

void
ShardedTranslation::translateReadInto(const SectorExtent &extent,
                                      SegmentBuffer &out) const
{
    panicIf(extent.empty(), "ShardedTranslation: empty read");
    out.clear();
    translateAppendSharded(extent, out);
}

void
ShardedTranslation::appendWrite(const SectorExtent &extent,
                                SegmentBuffer &out)
{
    panicIf(extent.empty(), "ShardedTranslation: empty write");
    panicIf(extent.end() > logStart_,
            "ShardedTranslation: workload LBA above the log start; "
            "construct with a larger initial frontier");

    Lba lba = extent.start;
    SectorCount remaining = extent.count;
    if (journal_ != nullptr)
        journalScratch_.clear();
    while (remaining > 0) {
        const SectorCount take =
            std::min(remaining, frontier_.zoneRemaining());
        const Pba placed = frontier_.pos();
        mapSharded(lba, placed, take);
        out.push(Segment{SectorExtent{lba, take}, placed, true});
        if (journal_ != nullptr)
            journalScratch_.push_back({lba, placed, take});
        frontier_.advance(take);
        lba += take;
        remaining -= take;
    }
    if (journal_ != nullptr)
        journal_->record(JournalRecordKind::Placement,
                         frontier_.pos(), frontier_.crossings(),
                         journalScratch_);
}

MountStats
ShardedTranslation::mountFromJournal(const SegmentJournal &journal)
{
    const telemetry::ScopedTimer timer(
        &telemetry::Registry::global().histogram(
            "mount_latency_ns"));
    for (const ExtentMap &map : maps_)
        panicIf(!map.empty(),
                "ShardedTranslation: mount on a non-fresh layer");
    const JournalScan scan = scanJournal(journal.image());
    for (const JournalRecord &record : scan.records) {
        panicIf(record.kind != JournalRecordKind::Placement,
                "ShardedTranslation: foreign record kind in "
                "journal");
        for (const JournalEntry &entry : record.entries)
            mapSharded(entry.lba, entry.pba, entry.count);
    }
    if (!scan.records.empty()) {
        const JournalRecord &last = scan.records.back();
        frontier_.restore(last.frontierAfter, last.aux);
    }
    return mountStatsFrom(scan);
}

void
ShardedTranslation::placeWriteInto(const SectorExtent &extent,
                                   SegmentBuffer &out)
{
    out.clear();
    appendWrite(extent, out);
}

void
ShardedTranslation::translateReadBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
    const
{
    out.clear();
    for (const SectorExtent &extent : extents) {
        panicIf(extent.empty(), "ShardedTranslation: empty read");
        translateAppendSharded(extent, out.flat());
        out.endRecord();
    }
}

void
ShardedTranslation::placeWriteBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
{
    out.clear();
    for (const SectorExtent &extent : extents) {
        appendWrite(extent, out.flat());
        out.endRecord();
    }
}

std::size_t
ShardedTranslation::staticFragmentCount() const
{
    std::size_t total = 0;
    for (const ExtentMap &map : maps_)
        total += map.entryCount();

    // Subtract one per stripe boundary where the single map would
    // have held one coalesced entry: both sides mapped and the
    // physical addresses contiguous across the edge.
    SegmentBuffer left;
    SegmentBuffer right;
    for (std::size_t k = 1; k < maps_.size(); ++k) {
        const Lba boundary = k * shardWidth_;
        if (boundary == 0 || boundary >= logStart_)
            break;
        left.clear();
        right.clear();
        maps_[k - 1].translateAppend(
            SectorExtent{boundary - 1, 1}, left);
        maps_[k].translateAppend(SectorExtent{boundary, 1}, right);
        if (left[0].mapped && right[0].mapped &&
            left[0].pba + 1 == right[0].pba)
            --total;
    }
    return total;
}

} // namespace logseek::stl
