/**
 * @file
 * Opportunistic defragmentation policy (paper §IV-A, Algorithm 1).
 *
 * After a fragmented read is served, the just-read (and therefore
 * already reassembled) LBA range may be rewritten contiguously at
 * the write frontier, eliminating the fragmentation for future
 * reads at the cost of one extra seek plus the rewrite transfer.
 * The paper's two overhead-limiting knobs are both supported:
 * defragment only ranges with at least N fragments, and only after
 * a fragmented range was accessed at least k times.
 */

#ifndef LOGSEEK_STL_DEFRAG_H
#define LOGSEEK_STL_DEFRAG_H

#include <cstdint>
#include <vector>

#include "util/extent.h"

namespace logseek::stl
{

/** Configuration for opportunistic defragmentation. */
struct DefragConfig
{
    /**
     * Minimum dynamic fragmentation (fragments per read) before a
     * range is defragmented. 2 = any fragmented read (Algorithm 1).
     */
    std::uint32_t minFragments = 2;

    /**
     * Minimum number of fragmented accesses to a range before it is
     * defragmented. 1 = defragment on first fragmented read.
     */
    std::uint32_t minAccesses = 1;
};

/** Decides which fragmented reads trigger a write-back. */
class Defragmenter
{
  public:
    explicit Defragmenter(const DefragConfig &config = {});

    /**
     * Observe a completed read and decide whether to defragment it.
     *
     * @param logical The LBA range just read.
     * @param fragments The read's dynamic fragmentation.
     * @return True if the range should be rewritten at the frontier.
     */
    bool onRead(const SectorExtent &logical, std::size_t fragments);

    /** Number of defragmentations approved so far. */
    std::uint64_t rewriteCount() const { return rewrites_; }

    const DefragConfig &config() const { return config_; }

    /** Ranges currently being counted toward minAccesses. */
    std::size_t trackedRanges() const { return accessCounts_.size(); }

  private:
    /**
     * Open-addressing hash map from an LBA range to its
     * fragmented-access count: flat slot array, linear probing,
     * backward-shift deletion — no per-entry allocation on the
     * per-read path (the old std::map allocated a node per tracked
     * range). The packed 64-bit (lba << 16 | count) key only seeds
     * the probe sequence; equality compares both fields exactly, so
     * trigger decisions are identical to the ordered-map original
     * for any key, including counts that overflow 16 bits.
     */
    class AccessCountMap
    {
      public:
        AccessCountMap();

        /** Increment and return the count of range (lba, count). */
        std::uint32_t increment(Lba lba, SectorCount count);

        /** Forget the range (no-op when untracked). */
        void erase(Lba lba, SectorCount count);

        std::size_t size() const { return size_; }

      private:
        struct Slot
        {
            Lba lba = 0;
            SectorCount count = 0;
            std::uint32_t hits = 0;
            bool used = false;
        };

        std::size_t slotFor(Lba lba, SectorCount count) const;
        void grow();

        std::vector<Slot> slots_;
        std::size_t size_ = 0;
    };

    DefragConfig config_;
    std::uint64_t rewrites_ = 0;

    /** Fragmented-access counts; only consulted when
     *  minAccesses > 1. */
    AccessCountMap accessCounts_;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_DEFRAG_H
