/**
 * @file
 * Durable translation metadata: the on-media segment-header journal.
 *
 * The simulator moves no real data, so durability is modeled the way
 * SMORE models it on a real drive: every placement writes a
 * self-identifying header next to the data — (LBA, PBA, count)
 * triples plus a monotonically increasing epoch — and a crashed host
 * recovers the whole translation state by scanning those headers in
 * log order. SegmentJournal is the byte image of that metadata
 * region: an append-only sequence of CRC-guarded frames in the
 * util/checkpoint LCKP framing (magic + length + CRC32 + payload),
 * one frame per placement group, so the existing torn-tail /
 * damaged-frame discrimination applies to segment headers verbatim.
 *
 * One frame == one epoch == one atomic translation operation (one
 * host write's placement, one cleaning relocation, one segment
 * reclaim, one media-cache merge). A frame is either fully intact
 * (the op is durable) or torn/damaged (the op never happened), which
 * is what makes "truncate to the last consistent epoch" crisp: the
 * scan replays intact frames while epochs stay consecutive and stops
 * at the first gap — state after a missing epoch cannot be trusted.
 *
 * The journal also records the post-op frontier (and its zone-
 * crossing count / open-segment index), so mount() restores the
 * write position exactly instead of re-deriving guard-skip or
 * free-segment arithmetic — the classic source of recovery drift.
 */

#ifndef LOGSEEK_STL_SEGMENT_JOURNAL_H
#define LOGSEEK_STL_SEGMENT_JOURNAL_H

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.h"

namespace logseek::stl
{

/** One placed segment header: where a logical range landed. */
struct JournalEntry
{
    Lba lba = 0;
    Pba pba = 0;
    SectorCount count = 0;

    bool operator==(const JournalEntry &) const = default;
};

/** What kind of translation operation an epoch records. */
enum class JournalRecordKind : std::uint8_t
{
    /** Segments were placed (host write, defrag or cleaning
     *  relocation); entries carry the placements. */
    Placement = 1,

    /** A finite-log segment was reclaimed; aux is the victim
     *  segment index. */
    SegmentReset = 2,

    /** A media-cache merge returned the address space to LBA
     *  order; the whole cache map is dropped. */
    MergeReset = 3,
};

/** One decoded journal frame (one epoch). */
struct JournalRecord
{
    JournalRecordKind kind = JournalRecordKind::Placement;

    /** Monotonic epoch; the first frame of a journal is 1. */
    std::uint64_t epoch = 0;

    /** Write position after the op (frontier / writePtr /
     *  cachePtr). */
    Pba frontierAfter = 0;

    /** Kind-specific: zone crossings after the op (Placement on a
     *  frontier layer), open-segment index (finite log), victim
     *  segment (SegmentReset), merge count (MergeReset). */
    std::uint64_t aux = 0;

    std::vector<JournalEntry> entries;

    bool operator==(const JournalRecord &) const = default;
};

/** Binary payload of one record (the bytes inside the frame). */
std::string encodeJournalRecord(const JournalRecord &record);

/** Strict decode; false on any truncation or trailing bytes. */
bool decodeJournalRecord(std::string_view payload,
                         JournalRecord &out);

/** What a (possibly crashed) journal image scanned to. */
struct JournalScan
{
    /** The consistent prefix: intact frames with consecutive
     *  epochs starting at 1. Mount replays exactly these. */
    std::vector<JournalRecord> records;

    /** Intact frames visited (including any truncated tail). */
    std::uint64_t segmentsScanned = 0;

    /** Frames dropped for a bad length or CRC. */
    std::uint64_t damagedFrames = 0;

    /** True when the image ended inside a frame (torn tail). */
    bool tornTail = false;

    /** Intact frames discarded because an epoch was missing or a
     *  payload did not decode — everything after the last
     *  consistent epoch. */
    std::uint64_t truncatedEpochs = 0;

    /** Bytes not accounted for by an intact frame. */
    std::uint64_t bytesDropped = 0;

    bool
    clean() const
    {
        return damagedFrames == 0 && !tornTail &&
               truncatedEpochs == 0;
    }
};

/**
 * Scan a journal image: parse the LCKP frames (torn-tail and
 * damaged-frame discrimination included), decode the records, and
 * truncate to the last consistent epoch. Never fails — damage is
 * reported in the result. Bumps recovery_segments_scanned_total and
 * recovery_torn_tails_total (self-gated on the telemetry switch).
 */
JournalScan scanJournal(std::string_view image);

/**
 * The append-only metadata image one translation layer writes to.
 * Owned by the caller of the replay (it must survive the crash that
 * destroys the engine); a layer holds only a non-owning pointer.
 */
class SegmentJournal
{
  public:
    /** Append one epoch; the record's epoch field is assigned
     *  here (monotonic from 1). */
    void record(JournalRecordKind kind, Pba frontier_after,
                std::uint64_t aux,
                std::span<const JournalEntry> entries);

    /** The raw on-media byte image. */
    const std::string &image() const { return image_; }

    /** Epochs recorded so far. */
    std::uint64_t epochs() const { return epoch_; }

    bool empty() const { return image_.empty(); }

    /** Drop everything (a fresh journal for a fresh run). */
    void clear();

    /**
     * Model the crash's effect on the metadata region: everything
     * up to the last frame was flushed; of the in-flight last
     * frame, a seeded prefix reached the media. The cut point is a
     * pure hash of (seed, image size), so equal seeds tear
     * identically across --jobs and checkpoint/resume. The torn
     * frame can come out empty (clean boundary — the op missed the
     * media entirely) or whole (the op was flushed just in time);
     * anything in between is the classic torn tail.
     */
    void tearTail(std::uint64_t seed);

  private:
    std::string image_;
    std::uint64_t epoch_ = 0;
};

/** What one mount (log-scan recovery) did. */
struct MountStats
{
    /** Epochs replayed into the layer. */
    std::uint64_t epochsApplied = 0;

    /** Intact frames the scan visited. */
    std::uint64_t segmentsScanned = 0;

    /** 1 when the image ended in a torn frame. */
    std::uint64_t tornTails = 0;

    /** Frames dropped for a bad CRC or length. */
    std::uint64_t damagedFrames = 0;

    /** Intact frames beyond the last consistent epoch. */
    std::uint64_t truncatedEpochs = 0;

    bool operator==(const MountStats &) const = default;
};

/** The damage tally of a scan, as mount() reports it. */
MountStats mountStatsFrom(const JournalScan &scan);

} // namespace logseek::stl

#endif // LOGSEEK_STL_SEGMENT_JOURNAL_H
