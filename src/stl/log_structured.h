/**
 * @file
 * Log-structured translation layer with a write frontier (paper §II
 * "disk model").
 *
 * Every write is placed at the current write frontier, which
 * advances forever across an infinite disk (no cleaning). Data never
 * written during the simulation is assumed to live at its identity
 * location (pba == lba), and the frontier starts just above the
 * highest LBA of the workload, exactly as the paper assigns
 * locations for data written before trace collection began.
 */

#ifndef LOGSEEK_STL_LOG_STRUCTURED_H
#define LOGSEEK_STL_LOG_STRUCTURED_H

#include <optional>

#include "stl/extent_map.h"
#include "stl/translation_layer.h"

namespace logseek::stl
{

/**
 * Optional zone structure for the log (paper §II background): SMR
 * devices divide each platter into zones separated by guard tracks.
 * When configured, the write frontier fills one zone's writable
 * area, then skips the guard — a write straddling the boundary is
 * split into per-zone segments and the skip costs one (short) seek.
 */
struct ZoneConfig
{
    /** Writable bytes per zone. */
    std::uint64_t zoneBytes = 256 * kMiB;

    /** Guard-band bytes between adjacent zones. */
    std::uint64_t guardBytes = kMiB;
};

/**
 * The write-frontier arithmetic of a (possibly zoned) log: where
 * the next write lands, how much of the current zone is left, and
 * the guard skip when a zone fills. Shared by LogStructuredLayer
 * and ShardedTranslation so the two place writes byte-identically.
 */
class LogFrontier
{
  public:
    /** @param start First physical sector of the log; zone
     *        boundaries are laid out from here. */
    explicit LogFrontier(Pba start,
                         const std::optional<ZoneConfig> &zones);

    /** Physical sector the next write will start at. */
    Pba pos() const { return pos_; }

    /** Sectors left in the current zone (max value if unzoned). */
    SectorCount zoneRemaining() const;

    /** Consume `take` sectors (take <= zoneRemaining()), skipping
     *  the guard band when the zone fills up. */
    void advance(SectorCount take);

    /** Number of zone boundaries crossed so far. */
    std::uint64_t crossings() const { return crossings_; }

    /**
     * Mount-time restore: adopt the position (and crossing count)
     * a journal recorded after its last epoch. Panics if the
     * position sits inside a guard band — a journal that places
     * the frontier there is lying.
     */
    void restore(Pba pos, std::uint64_t crossings);

  private:
    Pba start_;
    Pba pos_;
    SectorCount zoneSectors_ = 0; ///< 0 = unzoned
    SectorCount guardSectors_ = 0;
    std::uint64_t crossings_ = 0;
};

/** Full-extent-map log-structured translation layer. */
class LogStructuredLayer : public TranslationLayer
{
  public:
    /**
     * @param initial_frontier First physical sector of the log;
     *        must be at or above the workload's highest LBA + 1 so
     *        the log never collides with identity-placed data.
     * @param zones Optional zone/guard structure; zone boundaries
     *        are laid out from the initial frontier.
     */
    explicit LogStructuredLayer(Pba initial_frontier,
                                std::optional<ZoneConfig> zones = {});

    void translateReadInto(const SectorExtent &extent,
                           SegmentBuffer &out) const override;

    void placeWriteInto(const SectorExtent &extent,
                        SegmentBuffer &out) override;

    void translateReadBatchInto(std::span<const SectorExtent> extents,
                                SegmentBufferBatch &out)
        const override;

    void placeWriteBatchInto(std::span<const SectorExtent> extents,
                             SegmentBufferBatch &out) override;

    std::size_t staticFragmentCount() const override;

    std::string name() const override { return "log-structured"; }

    void attachJournal(SegmentJournal *journal) override
    {
        journal_ = journal;
    }

    MountStats
    mountFromJournal(const SegmentJournal &journal) override;

    /**
     * Rewrite a logical range contiguously at the write frontier
     * without new host data — the write half of opportunistic
     * defragmentation. Equivalent to placeWrite.
     */
    std::vector<Segment>
    relocate(const SectorExtent &extent)
    {
        return placeWrite(extent);
    }

    /** Allocation-free relocate for the replay hot path. */
    void
    relocateInto(const SectorExtent &extent, SegmentBuffer &out)
    {
        placeWriteInto(extent, out);
    }

    /** Physical sector the next write will start at. */
    Pba writeFrontier() const { return frontier_.pos(); }

    /** Sector where the log began (initial frontier). */
    Pba logStart() const { return logStart_; }

    /** Access to the translation map (read-only, for analyses). */
    const ExtentMap &extentMap() const { return map_; }

    /** Number of zone boundaries the frontier has crossed. */
    std::uint64_t zoneCrossings() const
    {
        return frontier_.crossings();
    }

  private:
    /** Place one write at the frontier, appending the placed
     *  segments to `out` without clearing it. */
    void appendWrite(const SectorExtent &extent, SegmentBuffer &out);

    ExtentMap map_;
    Pba logStart_;
    LogFrontier frontier_;

    /** Durable metadata journal; null = volatile (the default). */
    SegmentJournal *journal_ = nullptr;

    /** Reusable per-op entry scratch for journal records. */
    std::vector<JournalEntry> journalScratch_;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_LOG_STRUCTURED_H
