#include "log_structured.h"

#include "util/logging.h"

namespace logseek::stl
{

LogStructuredLayer::LogStructuredLayer(Pba initial_frontier,
                                       std::optional<ZoneConfig> zones)
    : logStart_(initial_frontier), frontier_(initial_frontier)
{
    if (zones) {
        zoneSectors_ = bytesToSectors(zones->zoneBytes);
        guardSectors_ = bytesToSectors(zones->guardBytes);
        panicIf(zoneSectors_ == 0,
                "LogStructuredLayer: zone size must be at least one "
                "sector");
    }
}

SectorCount
LogStructuredLayer::zoneRemaining() const
{
    if (zoneSectors_ == 0)
        return ~SectorCount{0};
    const SectorCount pitch = zoneSectors_ + guardSectors_;
    const SectorCount offset = (frontier_ - logStart_) % pitch;
    panicIf(offset >= zoneSectors_,
            "LogStructuredLayer: frontier inside a guard band");
    return zoneSectors_ - offset;
}

void
LogStructuredLayer::translateReadInto(const SectorExtent &extent,
                                      SegmentBuffer &out) const
{
    panicIf(extent.empty(), "LogStructuredLayer: empty read");
    map_.translateInto(extent, out);
}

void
LogStructuredLayer::placeWriteInto(const SectorExtent &extent,
                                   SegmentBuffer &out)
{
    panicIf(extent.empty(), "LogStructuredLayer: empty write");
    panicIf(extent.end() > logStart_,
            "LogStructuredLayer: workload LBA above the log start; "
            "construct with a larger initial frontier");

    out.clear();
    Lba lba = extent.start;
    SectorCount remaining = extent.count;
    while (remaining > 0) {
        const SectorCount take =
            std::min(remaining, zoneRemaining());
        map_.mapRange(lba, frontier_, take);
        out.push(Segment{SectorExtent{lba, take}, frontier_, true});
        lba += take;
        frontier_ += take;
        remaining -= take;
        // Skip the guard band when the zone filled up.
        if (zoneSectors_ != 0) {
            const SectorCount pitch = zoneSectors_ + guardSectors_;
            if ((frontier_ - logStart_) % pitch == zoneSectors_) {
                frontier_ += guardSectors_;
                ++zoneCrossings_;
            }
        }
    }
}

std::size_t
LogStructuredLayer::staticFragmentCount() const
{
    return map_.entryCount();
}

} // namespace logseek::stl
