#include "log_structured.h"

#include "util/logging.h"

namespace logseek::stl
{

LogFrontier::LogFrontier(Pba start,
                         const std::optional<ZoneConfig> &zones)
    : start_(start), pos_(start)
{
    if (zones) {
        zoneSectors_ = bytesToSectors(zones->zoneBytes);
        guardSectors_ = bytesToSectors(zones->guardBytes);
        panicIf(zoneSectors_ == 0,
                "LogFrontier: zone size must be at least one "
                "sector");
    }
}

SectorCount
LogFrontier::zoneRemaining() const
{
    if (zoneSectors_ == 0)
        return ~SectorCount{0};
    const SectorCount pitch = zoneSectors_ + guardSectors_;
    const SectorCount offset = (pos_ - start_) % pitch;
    panicIf(offset >= zoneSectors_,
            "LogFrontier: frontier inside a guard band");
    return zoneSectors_ - offset;
}

void
LogFrontier::advance(SectorCount take)
{
    pos_ += take;
    // Skip the guard band when the zone filled up.
    if (zoneSectors_ != 0) {
        const SectorCount pitch = zoneSectors_ + guardSectors_;
        if ((pos_ - start_) % pitch == zoneSectors_) {
            pos_ += guardSectors_;
            ++crossings_;
        }
    }
}

LogStructuredLayer::LogStructuredLayer(Pba initial_frontier,
                                       std::optional<ZoneConfig> zones)
    : logStart_(initial_frontier),
      frontier_(initial_frontier, zones)
{
}

void
LogStructuredLayer::translateReadInto(const SectorExtent &extent,
                                      SegmentBuffer &out) const
{
    panicIf(extent.empty(), "LogStructuredLayer: empty read");
    map_.translateInto(extent, out);
}

void
LogStructuredLayer::appendWrite(const SectorExtent &extent,
                                SegmentBuffer &out)
{
    panicIf(extent.empty(), "LogStructuredLayer: empty write");
    panicIf(extent.end() > logStart_,
            "LogStructuredLayer: workload LBA above the log start; "
            "construct with a larger initial frontier");

    Lba lba = extent.start;
    SectorCount remaining = extent.count;
    while (remaining > 0) {
        const SectorCount take =
            std::min(remaining, frontier_.zoneRemaining());
        const Pba placed = frontier_.pos();
        map_.mapRange(lba, placed, take);
        out.push(Segment{SectorExtent{lba, take}, placed, true});
        frontier_.advance(take);
        lba += take;
        remaining -= take;
    }
}

void
LogStructuredLayer::placeWriteInto(const SectorExtent &extent,
                                   SegmentBuffer &out)
{
    out.clear();
    appendWrite(extent, out);
}

void
LogStructuredLayer::translateReadBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
    const
{
    out.clear();
    for (const SectorExtent &extent : extents) {
        panicIf(extent.empty(), "LogStructuredLayer: empty read");
        map_.translateAppend(extent, out.flat());
        out.endRecord();
    }
}

void
LogStructuredLayer::placeWriteBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
{
    out.clear();
    for (const SectorExtent &extent : extents) {
        appendWrite(extent, out.flat());
        out.endRecord();
    }
}

std::size_t
LogStructuredLayer::staticFragmentCount() const
{
    return map_.entryCount();
}

} // namespace logseek::stl
