#include "log_structured.h"

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace logseek::stl
{

LogFrontier::LogFrontier(Pba start,
                         const std::optional<ZoneConfig> &zones)
    : start_(start), pos_(start)
{
    if (zones) {
        zoneSectors_ = bytesToSectors(zones->zoneBytes);
        guardSectors_ = bytesToSectors(zones->guardBytes);
        panicIf(zoneSectors_ == 0,
                "LogFrontier: zone size must be at least one "
                "sector");
    }
}

SectorCount
LogFrontier::zoneRemaining() const
{
    if (zoneSectors_ == 0)
        return ~SectorCount{0};
    const SectorCount pitch = zoneSectors_ + guardSectors_;
    const SectorCount offset = (pos_ - start_) % pitch;
    panicIf(offset >= zoneSectors_,
            "LogFrontier: frontier inside a guard band");
    return zoneSectors_ - offset;
}

void
LogFrontier::restore(Pba pos, std::uint64_t crossings)
{
    panicIf(pos < start_, "LogFrontier: restore below the log");
    if (zoneSectors_ != 0) {
        const SectorCount pitch = zoneSectors_ + guardSectors_;
        panicIf((pos - start_) % pitch >= zoneSectors_,
                "LogFrontier: restore inside a guard band");
    }
    pos_ = pos;
    crossings_ = crossings;
}

void
LogFrontier::advance(SectorCount take)
{
    pos_ += take;
    // Skip the guard band when the zone filled up.
    if (zoneSectors_ != 0) {
        const SectorCount pitch = zoneSectors_ + guardSectors_;
        if ((pos_ - start_) % pitch == zoneSectors_) {
            pos_ += guardSectors_;
            ++crossings_;
        }
    }
}

LogStructuredLayer::LogStructuredLayer(Pba initial_frontier,
                                       std::optional<ZoneConfig> zones)
    : logStart_(initial_frontier),
      frontier_(initial_frontier, zones)
{
}

void
LogStructuredLayer::translateReadInto(const SectorExtent &extent,
                                      SegmentBuffer &out) const
{
    panicIf(extent.empty(), "LogStructuredLayer: empty read");
    map_.translateInto(extent, out);
}

void
LogStructuredLayer::appendWrite(const SectorExtent &extent,
                                SegmentBuffer &out)
{
    panicIf(extent.empty(), "LogStructuredLayer: empty write");
    panicIf(extent.end() > logStart_,
            "LogStructuredLayer: workload LBA above the log start; "
            "construct with a larger initial frontier");

    Lba lba = extent.start;
    SectorCount remaining = extent.count;
    if (journal_ != nullptr)
        journalScratch_.clear();
    while (remaining > 0) {
        const SectorCount take =
            std::min(remaining, frontier_.zoneRemaining());
        const Pba placed = frontier_.pos();
        map_.mapRange(lba, placed, take);
        out.push(Segment{SectorExtent{lba, take}, placed, true});
        if (journal_ != nullptr)
            journalScratch_.push_back({lba, placed, take});
        frontier_.advance(take);
        lba += take;
        remaining -= take;
    }
    // One epoch per logical write: the placement is durable as a
    // unit or not at all (torn frames drop the whole op).
    if (journal_ != nullptr)
        journal_->record(JournalRecordKind::Placement,
                         frontier_.pos(), frontier_.crossings(),
                         journalScratch_);
}

MountStats
LogStructuredLayer::mountFromJournal(const SegmentJournal &journal)
{
    const telemetry::ScopedTimer timer(
        &telemetry::Registry::global().histogram(
            "mount_latency_ns"));
    panicIf(!map_.empty(),
            "LogStructuredLayer: mount on a non-fresh layer");
    const JournalScan scan = scanJournal(journal.image());
    for (const JournalRecord &record : scan.records) {
        panicIf(record.kind != JournalRecordKind::Placement,
                "LogStructuredLayer: foreign record kind in "
                "journal");
        for (const JournalEntry &entry : record.entries)
            map_.mapRange(entry.lba, entry.pba, entry.count);
    }
    if (!scan.records.empty()) {
        const JournalRecord &last = scan.records.back();
        frontier_.restore(last.frontierAfter, last.aux);
    }
    return mountStatsFrom(scan);
}

void
LogStructuredLayer::placeWriteInto(const SectorExtent &extent,
                                   SegmentBuffer &out)
{
    out.clear();
    appendWrite(extent, out);
}

void
LogStructuredLayer::translateReadBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
    const
{
    out.clear();
    for (const SectorExtent &extent : extents) {
        panicIf(extent.empty(), "LogStructuredLayer: empty read");
        map_.translateAppend(extent, out.flat());
        out.endRecord();
    }
}

void
LogStructuredLayer::placeWriteBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
{
    out.clear();
    for (const SectorExtent &extent : extents) {
        appendWrite(extent, out.flat());
        out.endRecord();
    }
}

std::size_t
LogStructuredLayer::staticFragmentCount() const
{
    return map_.entryCount();
}

} // namespace logseek::stl
