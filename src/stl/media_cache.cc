#include "media_cache.h"

#include <algorithm>
#include <map>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace logseek::stl
{

MediaCacheLayer::MediaCacheLayer(Pba data_zone_end,
                                 const MediaCacheConfig &config)
    : config_(config), dataZoneEnd_(data_zone_end),
      cacheStart_(data_zone_end),
      cacheCapacity_(bytesToSectors(config.cacheBytes)),
      bandSectors_(bytesToSectors(config.bandBytes)),
      cachePtr_(data_zone_end)
{
    panicIf(cacheCapacity_ == 0,
            "MediaCacheLayer: cache capacity must be at least one "
            "sector");
    panicIf(bandSectors_ == 0,
            "MediaCacheLayer: band size must be at least one sector");
    panicIf(config.mergeThreshold <= 0.0 ||
                config.mergeThreshold > 1.0,
            "MediaCacheLayer: merge threshold must be in (0, 1]");
}

void
MediaCacheLayer::translateReadInto(const SectorExtent &extent,
                                   SegmentBuffer &out) const
{
    panicIf(extent.empty(), "MediaCacheLayer: empty read");
    map_.translateInto(extent, out);
}

void
MediaCacheLayer::placeWriteInto(const SectorExtent &extent,
                                SegmentBuffer &out)
{
    panicIf(extent.empty(), "MediaCacheLayer: empty write");
    panicIf(extent.end() > dataZoneEnd_,
            "MediaCacheLayer: write beyond the data zones; "
            "construct with a larger data-zone end");
    const Pba placed = cachePtr_;
    map_.mapRange(extent.start, placed, extent.count);
    cachePtr_ += extent.count;
    cacheUsed_ += extent.count;
    out.clear();
    out.push(Segment{extent, placed, true});
    if (journal_ != nullptr) {
        const JournalEntry entry{extent.start, placed,
                                 extent.count};
        journal_->record(JournalRecordKind::Placement, cachePtr_,
                         merges_, {&entry, 1});
    }
}

void
MediaCacheLayer::translateReadBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
    const
{
    out.clear();
    for (const SectorExtent &extent : extents) {
        panicIf(extent.empty(), "MediaCacheLayer: empty read");
        map_.translateAppend(extent, out.flat());
        out.endRecord();
    }
}

void
MediaCacheLayer::placeWriteBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
{
    out.clear();
    for (const SectorExtent &extent : extents) {
        panicIf(extent.empty(), "MediaCacheLayer: empty write");
        panicIf(extent.end() > dataZoneEnd_,
                "MediaCacheLayer: write beyond the data zones; "
                "construct with a larger data-zone end");
        const Pba placed = cachePtr_;
        map_.mapRange(extent.start, placed, extent.count);
        cachePtr_ += extent.count;
        cacheUsed_ += extent.count;
        out.flat().push(Segment{extent, placed, true});
        out.endRecord();
        if (journal_ != nullptr) {
            const JournalEntry entry{extent.start, placed,
                                     extent.count};
            journal_->record(JournalRecordKind::Placement,
                             cachePtr_, merges_, {&entry, 1});
        }
    }
}

std::size_t
MediaCacheLayer::staticFragmentCount() const
{
    return map_.entryCount();
}

bool
MediaCacheLayer::needsMerge() const
{
    return static_cast<double>(cacheUsed_) >=
           config_.mergeThreshold *
               static_cast<double>(cacheCapacity_);
}

std::vector<MediaAccess>
MediaCacheLayer::maintenance()
{
    if (!needsMerge())
        return {};

    // Collect the dirty bands and, per band, the cache fragments
    // that must be folded back, in physical order.
    std::map<std::uint64_t, std::vector<SectorExtent>> bands;
    map_.forEachEntry([&](Lba lba, Pba pba, SectorCount count) {
        // An entry may straddle band boundaries; split accordingly.
        Lba cursor = lba;
        while (cursor < lba + count) {
            const std::uint64_t band = cursor / bandSectors_;
            const Lba band_end = (band + 1) * bandSectors_;
            const Lba piece_end = std::min<Lba>(lba + count, band_end);
            bands[band].push_back(SectorExtent{
                pba + (cursor - lba), piece_end - cursor});
            cursor = piece_end;
        }
    });

    std::vector<MediaAccess> accesses;
    for (auto &[band, fragments] : bands) {
        const Lba band_start = band * bandSectors_;
        const SectorCount band_count = std::min<SectorCount>(
            bandSectors_, dataZoneEnd_ - band_start);
        const SectorExtent band_extent{band_start, band_count};

        // Read-modify-write: old band contents, then the cache
        // fragments (coalesced, in cache order), then the rewrite.
        accesses.push_back({band_extent, trace::IoType::Read});
        std::sort(fragments.begin(), fragments.end(),
                  [](const SectorExtent &a, const SectorExtent &b) {
                      return a.start < b.start;
                  });
        SectorExtent pending{0, 0};
        for (const auto &fragment : fragments) {
            if (!pending.empty() &&
                pending.end() == fragment.start) {
                pending.count += fragment.count;
                continue;
            }
            if (!pending.empty())
                accesses.push_back({pending, trace::IoType::Read});
            pending = fragment;
        }
        if (!pending.empty())
            accesses.push_back({pending, trace::IoType::Read});
        accesses.push_back({band_extent, trace::IoType::Write});
    }

    // Everything is back in LBA order: drop the whole map and
    // rewind the cache append pointer.
    map_ = ExtentMap();
    cacheUsed_ = 0;
    cachePtr_ = cacheStart_;
    ++merges_;
    if (journal_ != nullptr)
        journal_->record(JournalRecordKind::MergeReset, cachePtr_,
                         merges_, {});
    return accesses;
}

MountStats
MediaCacheLayer::mountFromJournal(const SegmentJournal &journal)
{
    const telemetry::ScopedTimer timer(
        &telemetry::Registry::global().histogram(
            "mount_latency_ns"));
    panicIf(!map_.empty(),
            "MediaCacheLayer: mount on a non-fresh layer");
    const JournalScan scan = scanJournal(journal.image());
    for (const JournalRecord &record : scan.records) {
        switch (record.kind) {
        case JournalRecordKind::Placement:
            for (const JournalEntry &entry : record.entries) {
                map_.mapRange(entry.lba, entry.pba, entry.count);
                cacheUsed_ += entry.count;
            }
            cachePtr_ = record.frontierAfter;
            break;
        case JournalRecordKind::MergeReset:
            map_ = ExtentMap();
            cacheUsed_ = 0;
            cachePtr_ = record.frontierAfter;
            merges_ = record.aux;
            break;
        case JournalRecordKind::SegmentReset:
            fatal("MediaCacheLayer: foreign record kind in "
                  "journal");
        }
    }
    return mountStatsFrom(scan);
}

} // namespace logseek::stl
