#include "accounting.h"

namespace logseek::stl
{

Accounting::Accounting(SimResult &result,
                       const disk::SeekTimeParams &params)
    : result_(result), timeModel_(params)
{
    auto &registry = telemetry::Registry::global();
    requestsRead_ = &registry.counter("replay_requests_total",
                                      "type=\"read\"");
    requestsWrite_ = &registry.counter("replay_requests_total",
                                       "type=\"write\"");
    seeksRead_ =
        &registry.counter("replay_seeks_total", "type=\"read\"");
    seeksWrite_ =
        &registry.counter("replay_seeks_total", "type=\"write\"");
    seeksCleaning_ = &registry.counter("replay_seeks_total",
                                       "type=\"cleaning\"");
    mediaReadBytes_ = &registry.counter("replay_media_bytes_total",
                                        "dir=\"read\"");
    mediaWriteBytes_ = &registry.counter("replay_media_bytes_total",
                                         "dir=\"write\"");
    defragRewrites_ =
        &registry.counter("replay_defrag_rewrites_total");
}

void
Accounting::beginRead()
{
    ++result_.reads;
    requestsRead_->add();
}

void
Accounting::beginWrite(std::uint64_t host_bytes)
{
    ++result_.writes;
    result_.hostWriteBytes += host_bytes;
    requestsWrite_->add();
}

void
Accounting::readFragmentation(std::size_t fragments)
{
    if (fragments >= 2) {
        ++result_.fragmentedReads;
        result_.readFragments += fragments;
    }
}

void
Accounting::hostAccess(IoEvent &event, const SectorExtent &extent,
                       trace::IoType type)
{
    const disk::SeekInfo info = head_.access(extent, type);
    event.mediaBytes += extent.bytes();
    if (info.seeked) {
        event.seeks.push_back(info);
        if (type == trace::IoType::Read) {
            ++result_.readSeeks;
            seeksRead_->add();
        } else {
            ++result_.writeSeeks;
            seeksWrite_->add();
        }
        result_.seekTimeSec +=
            timeModel_.seekSeconds(info.distanceBytes);
    }
    if (type == trace::IoType::Read) {
        result_.mediaReadBytes += extent.bytes();
        mediaReadBytes_->add(extent.bytes());
    } else {
        result_.mediaWriteBytes += extent.bytes();
        mediaWriteBytes_->add(extent.bytes());
    }
    if (device_ != nullptr)
        deviceAccess(event, extent, type);
}

void
Accounting::cleaningAccess(IoEvent &event, const MediaAccess &access)
{
    const disk::SeekInfo info =
        head_.access(access.physical, access.type);
    if (info.seeked) {
        ++result_.cleaningSeeks;
        ++event.cleaningSeeks;
        seeksCleaning_->add();
        result_.seekTimeSec +=
            timeModel_.seekSeconds(info.distanceBytes);
    }
    if (access.type == trace::IoType::Read)
        result_.cleaningReadBytes += access.physical.bytes();
    else
        result_.cleaningWriteBytes += access.physical.bytes();
    if (device_ != nullptr)
        deviceAccess(event, access.physical, access.type);
}

void
Accounting::attachDevice(disk::ZonedDevice *device)
{
    device_ = device;
}

void
Accounting::deviceAccess(IoEvent &event,
                         const SectorExtent &extent,
                         trace::IoType type)
{
    if (type == trace::IoType::Read) {
        const disk::DeviceReadResult read =
            device_->read(extent);
        result_.deviceReadRetries += read.retries;
        result_.deviceRecoveredSectors += read.recoveredSectors;
        result_.deviceFailedReadSectors += read.failedSectors;
        if (read.degraded())
            ++result_.deviceDegradedReads;
        event.deviceRetries += read.retries;
        event.deviceFailedSectors += read.failedSectors;
    } else {
        const disk::DeviceWriteResult write =
            device_->write(extent);
        result_.deviceZoneResets += write.zoneResets;
        result_.deviceWpViolations += write.wpViolations;
        result_.deviceOutOfPolicyWrites += write.outOfPolicy;
        result_.deviceFailedWriteSectors += write.failedSectors;
        event.deviceFailedSectors += write.failedSectors;
    }
}

void
Accounting::finishDevice()
{
    if (device_ == nullptr)
        return;
    const disk::DeviceStats &stats = device_->stats();
    result_.deviceGrownDefects = stats.grownDefects;
    const auto census = device_->zones().conditionCensus();
    result_.deviceReadOnlyZones =
        census[static_cast<std::size_t>(
            disk::ZoneCondition::ReadOnly)];
    result_.deviceOfflineZones = census[static_cast<std::size_t>(
        disk::ZoneCondition::Offline)];
    device_->publishZoneGauges();
}

void
Accounting::cacheHit(IoEvent &event)
{
    ++event.cacheHits;
    ++result_.cacheHits;
}

void
Accounting::cacheMiss()
{
    ++result_.cacheMisses;
}

void
Accounting::prefetchHit(IoEvent &event)
{
    ++event.prefetchHits;
    ++result_.prefetchHits;
}

void
Accounting::defragRewrite(IoEvent &event, std::uint64_t bytes)
{
    event.defragRewrite = true;
    ++result_.defragRewrites;
    result_.defragBytes += bytes;
    defragRewrites_->add();
}

void
Accounting::setCleaningMerges(std::uint64_t merges)
{
    result_.cleaningMerges = merges;
}

void
Accounting::setStaticFragments(std::size_t fragments)
{
    result_.staticFragments = fragments;
}

} // namespace logseek::stl
