#include "accounting.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace logseek::stl
{

Accounting::Accounting(SimResult &result,
                       const disk::SeekTimeParams &params)
    : result_(result), timeModel_(params)
{
    auto &registry = telemetry::Registry::global();
    requestsRead_ = &registry.counter("replay_requests_total",
                                      "type=\"read\"");
    requestsWrite_ = &registry.counter("replay_requests_total",
                                       "type=\"write\"");
    seeksRead_ =
        &registry.counter("replay_seeks_total", "type=\"read\"");
    seeksWrite_ =
        &registry.counter("replay_seeks_total", "type=\"write\"");
    seeksCleaning_ = &registry.counter("replay_seeks_total",
                                       "type=\"cleaning\"");
    mediaReadBytes_ = &registry.counter("replay_media_bytes_total",
                                        "dir=\"read\"");
    mediaWriteBytes_ = &registry.counter("replay_media_bytes_total",
                                         "dir=\"write\"");
    defragRewrites_ =
        &registry.counter("replay_defrag_rewrites_total");
    shardFlushes_ =
        &registry.counter("replay_shard_flushes_total");
    shardAccesses_ =
        &registry.counter("replay_shard_accesses_total");
}

void
Accounting::beginRead()
{
    ++result_.reads;
    requestsRead_->add();
}

void
Accounting::beginWrite(std::uint64_t host_bytes)
{
    ++result_.writes;
    result_.hostWriteBytes += host_bytes;
    requestsWrite_->add();
}

void
Accounting::readFragmentation(std::size_t fragments)
{
    if (fragments >= 2) {
        ++result_.fragmentedReads;
        result_.readFragments += fragments;
    }
}

void
Accounting::hostAccess(IoEvent &event, const SectorExtent &extent,
                       trace::IoType type)
{
    if (shards_ != 0) {
        // Order-independent tallies happen on the spot; the seek
        // classification (and the order-dependent device mirror)
        // waits for flushDeferred().
        event.mediaBytes += extent.bytes();
        if (type == trace::IoType::Read) {
            result_.mediaReadBytes += extent.bytes();
            mediaReadBytes_->add(extent.bytes());
        } else {
            result_.mediaWriteBytes += extent.bytes();
            mediaWriteBytes_->add(extent.bytes());
        }
        journal_.push_back({&event, extent, type, false});
        return;
    }

    const disk::SeekInfo info = head_.access(extent, type);
    event.mediaBytes += extent.bytes();
    if (info.seeked) {
        event.seeks.push_back(info);
        if (type == trace::IoType::Read) {
            ++result_.readSeeks;
            seeksRead_->add();
        } else {
            ++result_.writeSeeks;
            seeksWrite_->add();
        }
        result_.seekTimeSec +=
            timeModel_.seekSeconds(info.distanceBytes);
    }
    if (type == trace::IoType::Read) {
        result_.mediaReadBytes += extent.bytes();
        mediaReadBytes_->add(extent.bytes());
    } else {
        result_.mediaWriteBytes += extent.bytes();
        mediaWriteBytes_->add(extent.bytes());
    }
    if (device_ != nullptr)
        deviceAccess(event, extent, type);
}

void
Accounting::cleaningAccess(IoEvent &event, const MediaAccess &access)
{
    if (shards_ != 0) {
        if (access.type == trace::IoType::Read)
            result_.cleaningReadBytes += access.physical.bytes();
        else
            result_.cleaningWriteBytes += access.physical.bytes();
        journal_.push_back(
            {&event, access.physical, access.type, true});
        return;
    }

    const disk::SeekInfo info =
        head_.access(access.physical, access.type);
    if (info.seeked) {
        ++result_.cleaningSeeks;
        ++event.cleaningSeeks;
        seeksCleaning_->add();
        result_.seekTimeSec +=
            timeModel_.seekSeconds(info.distanceBytes);
    }
    if (access.type == trace::IoType::Read)
        result_.cleaningReadBytes += access.physical.bytes();
    else
        result_.cleaningWriteBytes += access.physical.bytes();
    if (device_ != nullptr)
        deviceAccess(event, access.physical, access.type);
}

void
Accounting::attachDevice(disk::ZonedDevice *device)
{
    device_ = device;
}

void
Accounting::enableDeferred(std::size_t shards,
                           ShardExecutor executor)
{
    panicIf(shards == 0,
            "Accounting: deferred mode needs at least one shard");
    panicIf(!journal_.empty(),
            "Accounting: enableDeferred with a non-empty journal");
    shards_ = shards;
    executor_ = std::move(executor);
}

void
Accounting::flushDeferred()
{
    const std::size_t n = journal_.size();
    if (n == 0)
        return;
    seekScratch_.resize(n);
    secondsScratch_.resize(n);

    // Chunked classification. The head position each chunk starts
    // from is fully determined by the journal itself (the end of
    // the previous chunk's last extent), so chunks are independent
    // and may run on any thread in any order.
    const std::size_t chunks = std::min(shards_, n);
    const auto classifyChunk = [&](std::size_t k) {
        const std::size_t begin = n * k / chunks;
        const std::size_t end = n * (k + 1) / chunks;
        std::uint64_t expected =
            begin == 0 ? head_.expectedNext()
                       : journal_[begin - 1].extent.end();
        for (std::size_t i = begin; i < end; ++i) {
            const DeferredAccess &a = journal_[i];
            const disk::SeekInfo info =
                disk::DiskHead::classify(expected, a.extent,
                                         a.type);
            seekScratch_[i] = info;
            secondsScratch_[i] =
                info.seeked
                    ? timeModel_.seekSeconds(info.distanceBytes)
                    : 0.0;
            expected = a.extent.end();
        }
    };
    if (chunks > 1 && executor_)
        executor_(chunks, classifyChunk);
    else
        for (std::size_t k = 0; k < chunks; ++k)
            classifyChunk(k);

    // Serial merge in journal order: integer tallies are
    // order-independent, but seekTimeSec must re-accumulate in the
    // original order (floating-point addition is not associative)
    // and the device mirror's zone state is order-dependent.
    for (std::size_t i = 0; i < n; ++i) {
        const DeferredAccess &a = journal_[i];
        const disk::SeekInfo &info = seekScratch_[i];
        if (info.seeked) {
            if (a.cleaning) {
                ++result_.cleaningSeeks;
                ++a.event->cleaningSeeks;
                seeksCleaning_->add();
            } else {
                a.event->seeks.push_back(info);
                if (a.type == trace::IoType::Read) {
                    ++result_.readSeeks;
                    seeksRead_->add();
                } else {
                    ++result_.writeSeeks;
                    seeksWrite_->add();
                }
            }
            result_.seekTimeSec += secondsScratch_[i];
        }
        if (device_ != nullptr)
            deviceAccess(*a.event, a.extent, a.type);
    }

    head_.fastForward(journal_.back().extent.end(), n);
    shardFlushes_->add();
    shardAccesses_->add(n);
    journal_.clear();
}

void
Accounting::deviceAccess(IoEvent &event,
                         const SectorExtent &extent,
                         trace::IoType type)
{
    if (type == trace::IoType::Read) {
        const disk::DeviceReadResult read =
            device_->read(extent);
        result_.deviceReadRetries += read.retries;
        result_.deviceRecoveredSectors += read.recoveredSectors;
        result_.deviceFailedReadSectors += read.failedSectors;
        if (read.degraded())
            ++result_.deviceDegradedReads;
        event.deviceRetries += read.retries;
        event.deviceFailedSectors += read.failedSectors;
    } else {
        const disk::DeviceWriteResult write =
            device_->write(extent);
        result_.deviceZoneResets += write.zoneResets;
        result_.deviceWpViolations += write.wpViolations;
        result_.deviceOutOfPolicyWrites += write.outOfPolicy;
        result_.deviceFailedWriteSectors += write.failedSectors;
        event.deviceFailedSectors += write.failedSectors;
    }
}

void
Accounting::finishDevice()
{
    if (device_ == nullptr)
        return;
    const disk::DeviceStats &stats = device_->stats();
    result_.deviceGrownDefects = stats.grownDefects;
    const auto census = device_->zones().conditionCensus();
    result_.deviceReadOnlyZones =
        census[static_cast<std::size_t>(
            disk::ZoneCondition::ReadOnly)];
    result_.deviceOfflineZones = census[static_cast<std::size_t>(
        disk::ZoneCondition::Offline)];
    result_.deviceErrorLogDropped =
        device_->readErrorLog().dropped();
    device_->publishZoneGauges();
}

void
Accounting::cacheHit(IoEvent &event)
{
    ++event.cacheHits;
    ++result_.cacheHits;
}

void
Accounting::cacheMiss()
{
    ++result_.cacheMisses;
}

void
Accounting::prefetchHit(IoEvent &event)
{
    ++event.prefetchHits;
    ++result_.prefetchHits;
}

void
Accounting::defragRewrite(IoEvent &event, std::uint64_t bytes)
{
    event.defragRewrite = true;
    ++result_.defragRewrites;
    result_.defragBytes += bytes;
    defragRewrites_->add();
}

void
Accounting::setCleaningMerges(std::uint64_t merges)
{
    result_.cleaningMerges = merges;
}

void
Accounting::setGcVictimStats(std::uint64_t live_bytes,
                             std::uint64_t span_bytes)
{
    result_.gcVictimLiveBytes = live_bytes;
    result_.gcVictimSpanBytes = span_bytes;
}

void
Accounting::setStaticFragments(std::size_t fragments)
{
    result_.staticFragments = fragments;
}

} // namespace logseek::stl
