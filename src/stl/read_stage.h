/**
 * @file
 * The composable read path of the replay engine.
 *
 * A read request, after translation and contiguity merging, is a
 * sequence of physical fragments. Each fragment flows down an
 * ordered pipeline of ReadStage components until one serves it:
 * the selective RAM cache (§IV-C), the drive prefetch buffer
 * (§IV-B), and finally the media itself. A stage can also widen
 * the media region fetched on a miss (look-ahead-behind), observe
 * what was transferred (cache/buffer admission), and react to the
 * completed read (the §IV-A defrag trigger). Adding a mechanism or
 * a backend means adding a stage, not editing the engine.
 */

#ifndef LOGSEEK_STL_READ_STAGE_H
#define LOGSEEK_STL_READ_STAGE_H

#include <memory>
#include <string_view>
#include <vector>

#include "stl/simulator.h"
#include "trace/record.h"
#include "util/extent.h"

namespace logseek::stl
{

/** One physical fragment of a read flowing down the pipeline. */
struct ReadFragment
{
    /** Physical range of the fragment (after contiguity merging). */
    SectorExtent physical;

    /** True if the parent read resolved to two or more fragments. */
    bool fragmented = false;

    /**
     * Media region a fetch would transfer: starts as `physical`,
     * widened by the stages' widenFetch hooks before the serve
     * pass (widening is side-effect free).
     */
    SectorExtent fetchRegion;
};

/** How a stage handled a fragment offered to it. */
enum class ServeOutcome
{
    /** Not served here; offer it to the next stage. */
    Miss,

    /** Served from this stage's state; no media access happened. */
    Hit,

    /** Served by transferring fetchRegion from the media. */
    Fetched,
};

/**
 * One stage of the read path. Stages are per-run objects owned by
 * the pipeline; they may hold mutable mechanism state (caches,
 * buffers, trigger counters) and report into the run's Accounting
 * sink.
 */
class ReadStage
{
  public:
    virtual ~ReadStage() = default;

    /** Stage name for diagnostics. */
    virtual std::string_view name() const = 0;

    /** Offer a fragment to this stage. */
    virtual ServeOutcome serve(const ReadFragment &fragment,
                               IoEvent &event) = 0;

    /**
     * Widen the region a media fetch of this fragment would
     * transfer. Called on every stage, in pipeline order, before
     * the serve pass; must be side-effect free.
     */
    virtual SectorExtent
    widenFetch(const ReadFragment &fragment,
               const SectorExtent &region) const
    {
        (void)fragment;
        return region;
    }

    /**
     * A lower stage fetched `region` from the media for this
     * fragment. Called in reverse pipeline order (nearest the
     * media first) so admissions see the transfer bottom-up.
     */
    virtual void onFetched(const ReadFragment &fragment,
                           const SectorExtent &region)
    {
        (void)fragment;
        (void)region;
    }

    /**
     * The whole logical read completed (all fragments served).
     * Called in pipeline order; this is where read-triggered
     * write-back mechanisms (defragmentation) act.
     */
    virtual void onReadComplete(const trace::IoRecord &record,
                                IoEvent &event)
    {
        (void)record;
        (void)event;
    }
};

/**
 * The ordered read path. The engine offers each fragment to the
 * stages front to back; the last stage (media access) always
 * serves, so a fragment cannot fall through.
 */
class ReadPipeline
{
  public:
    /** Append a stage; consulted after all earlier stages. */
    void addStage(std::unique_ptr<ReadStage> stage);

    /**
     * Serve one fragment: pre-compute the fetch region, offer the
     * fragment to each stage, and on a media fetch notify the
     * stages in reverse order.
     */
    void serveFragment(ReadFragment fragment, IoEvent &event);

    /** Notify all stages that a logical read completed. */
    void completeRead(const trace::IoRecord &record, IoEvent &event);

    std::size_t stageCount() const { return stages_.size(); }

  private:
    std::vector<std::unique_ptr<ReadStage>> stages_;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_READ_STAGE_H
