/**
 * @file
 * The composable read path of the replay engine.
 *
 * A read request, after translation and contiguity merging, is a
 * sequence of physical fragments. Each fragment flows down an
 * ordered pipeline of ReadStage components until one serves it:
 * the selective RAM cache (§IV-C), the drive prefetch buffer
 * (§IV-B), and finally the media itself. A stage can also widen
 * the media region fetched on a miss (look-ahead-behind), observe
 * what was transferred (cache/buffer admission), and react to the
 * completed read (the §IV-A defrag trigger). Adding a mechanism or
 * a backend means adding a stage, not editing the engine.
 */

#ifndef LOGSEEK_STL_READ_STAGE_H
#define LOGSEEK_STL_READ_STAGE_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "stl/simulator.h"
#include "telemetry/metrics.h"
#include "trace/record.h"
#include "util/extent.h"

namespace logseek::stl
{

/** One physical fragment of a read flowing down the pipeline. */
struct ReadFragment
{
    /** Physical range of the fragment (after contiguity merging). */
    SectorExtent physical;

    /** True if the parent read resolved to two or more fragments. */
    bool fragmented = false;

    /**
     * Media region a fetch would transfer: starts as `physical`,
     * widened by the stages' widenFetch hooks before the serve
     * pass (widening is side-effect free).
     */
    SectorExtent fetchRegion;
};

/** How a stage handled a fragment offered to it. */
enum class ServeOutcome
{
    /** Not served here; offer it to the next stage. */
    Miss,

    /** Served from this stage's state; no media access happened. */
    Hit,

    /** Served by transferring fetchRegion from the media. */
    Fetched,
};

/**
 * One stage of the read path. Stages are per-run objects owned by
 * the pipeline; they may hold mutable mechanism state (caches,
 * buffers, trigger counters) and report into the run's Accounting
 * sink.
 */
class ReadStage
{
  public:
    virtual ~ReadStage() = default;

    /** Stage name for diagnostics. */
    virtual std::string_view name() const = 0;

    /** Offer a fragment to this stage. */
    virtual ServeOutcome serve(const ReadFragment &fragment,
                               IoEvent &event) = 0;

    /**
     * Widen the region a media fetch of this fragment would
     * transfer. Called on every stage, in pipeline order, before
     * the serve pass; must be side-effect free.
     */
    virtual SectorExtent
    widenFetch(const ReadFragment &fragment,
               const SectorExtent &region) const
    {
        (void)fragment;
        return region;
    }

    /**
     * A lower stage fetched `region` from the media for this
     * fragment. Called in reverse pipeline order (nearest the
     * media first) so admissions see the transfer bottom-up.
     */
    virtual void onFetched(const ReadFragment &fragment,
                           const SectorExtent &region)
    {
        (void)fragment;
        (void)region;
    }

    /**
     * The whole logical read completed (all fragments served).
     * Called in pipeline order; this is where read-triggered
     * write-back mechanisms (defragmentation) act.
     */
    virtual void onReadComplete(const trace::IoRecord &record,
                                IoEvent &event)
    {
        (void)record;
        (void)event;
    }
};

/**
 * The ordered read path. The engine offers each fragment to the
 * stages front to back; the last stage (media access) always
 * serves, so a fragment cannot fall through.
 *
 * When telemetry is armed the pipeline also attributes events and
 * time per stage: every serve() call increments a per-(stage,
 * outcome) counter and feeds a per-stage latency histogram, and
 * the time spent inside each stage accumulates for the engine's
 * end-of-run aggregate span. When telemetry is disabled none of
 * this happens — not even the clock reads.
 */
class ReadPipeline
{
  public:
    /**
     * Append a stage; consulted after all earlier stages. Resolves
     * the stage's telemetry handles once, here, so the per-fragment
     * path never touches the registry.
     */
    void addStage(std::unique_ptr<ReadStage> stage);

    /**
     * Serve one fragment: pre-compute the fetch region, offer the
     * fragment to each stage, and on a media fetch notify the
     * stages in reverse order.
     */
    void serveFragment(ReadFragment fragment, IoEvent &event);

    /** Notify all stages that a logical read completed. */
    void completeRead(const trace::IoRecord &record, IoEvent &event);

    std::size_t stageCount() const { return stages_.size(); }

    /** Name of stage i (pipeline order). */
    std::string_view stageName(std::size_t i) const
    {
        return stages_[i].stage->name();
    }

    /**
     * Nanoseconds spent inside stage i's serve() so far this run.
     * Only accumulates while telemetry is enabled; the engine is
     * single-threaded, so this is a plain integer.
     */
    std::uint64_t stageServeNs(std::size_t i) const
    {
        return stages_[i].serveNs;
    }

  private:
    /** A stage plus its pre-resolved telemetry handles. */
    struct StageSlot
    {
        std::unique_ptr<ReadStage> stage;
        telemetry::Counter *hits = nullptr;
        telemetry::Counter *fetches = nullptr;
        telemetry::Counter *misses = nullptr;
        telemetry::LatencyHistogram *serveLatency = nullptr;
        std::uint64_t serveNs = 0;
    };

    std::vector<StageSlot> stages_;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_READ_STAGE_H
