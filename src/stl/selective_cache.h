/**
 * @file
 * Translation-aware selective caching (paper §IV-C, Algorithm 3).
 *
 * A small RAM cache (64 MB in the paper's evaluation) populated only
 * from fragments of *fragmented* reads. Because fragment access is
 * highly skewed (paper Figure 10), a few tens of MB eliminate most
 * fragmentation-induced seeks while avoiding pollution from data
 * that would never cause a seek; LRU replacement.
 */

#ifndef LOGSEEK_STL_SELECTIVE_CACHE_H
#define LOGSEEK_STL_SELECTIVE_CACHE_H

#include <cstdint>

#include "disk/pba_cache.h"
#include "util/extent.h"

namespace logseek::stl
{

/** Configuration for the selective fragment cache. */
struct SelectiveCacheConfig
{
    /** Cache capacity in bytes (the paper evaluates 64 MiB). */
    std::uint64_t capacityBytes = 64 * kMiB;
};

/** LRU fragment cache keyed by physical sector ranges. */
class SelectiveCache
{
  public:
    explicit SelectiveCache(const SelectiveCacheConfig &config = {});

    /**
     * Check whether a fragment's physical range is fully cached.
     * A hit refreshes the entries' recency. Hit/miss counters are
     * updated.
     */
    bool lookup(const SectorExtent &physical);

    /** Admit a fragment just read from the media. */
    void admit(const SectorExtent &physical);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t usedBytes() const { return cache_.usedBytes(); }
    std::uint64_t capacityBytes() const
    {
        return cache_.capacityBytes();
    }
    std::uint64_t evictionCount() const
    {
        return cache_.evictionCount();
    }

  private:
    disk::PbaRangeCache cache_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_SELECTIVE_CACHE_H
