#include "extent_map.h"

#include <algorithm>
#include <cstring>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace logseek::stl
{

ExtentMap::ExtentMap()
{
    auto &registry = telemetry::Registry::global();
    cursorHits_ = &registry.counter("extent_map_cursor_hits_total");
    nodeSplits_ = &registry.counter("extent_map_node_splits_total");
}

ExtentMap::~ExtentMap() = default;

ExtentMap::ExtentMap(ExtentMap &&other) noexcept
    : root_(other.root_), height_(other.height_),
      firstLeaf_(other.firstLeaf_), lastLeaf_(other.lastLeaf_),
      cursor_(other.cursor_), entryCount_(other.entryCount_),
      mappedSectors_(other.mappedSectors_),
      leafBlocks_(std::move(other.leafBlocks_)),
      leafBlockUsed_(other.leafBlockUsed_),
      leafFree_(other.leafFree_),
      innerBlocks_(std::move(other.innerBlocks_)),
      innerBlockUsed_(other.innerBlockUsed_),
      innerFree_(other.innerFree_), cursorHits_(other.cursorHits_),
      nodeSplits_(other.nodeSplits_)
{
    other.root_ = nullptr;
    other.height_ = 0;
    other.firstLeaf_ = other.lastLeaf_ = other.cursor_ = nullptr;
    other.entryCount_ = 0;
    other.mappedSectors_ = 0;
    other.leafBlockUsed_ = 0;
    other.leafFree_ = nullptr;
    other.innerBlockUsed_ = 0;
    other.innerFree_ = nullptr;
}

ExtentMap &
ExtentMap::operator=(ExtentMap &&other) noexcept
{
    if (this != &other) {
        std::swap(root_, other.root_);
        std::swap(height_, other.height_);
        std::swap(firstLeaf_, other.firstLeaf_);
        std::swap(lastLeaf_, other.lastLeaf_);
        std::swap(cursor_, other.cursor_);
        std::swap(entryCount_, other.entryCount_);
        std::swap(mappedSectors_, other.mappedSectors_);
        leafBlocks_.swap(other.leafBlocks_);
        std::swap(leafBlockUsed_, other.leafBlockUsed_);
        std::swap(leafFree_, other.leafFree_);
        innerBlocks_.swap(other.innerBlocks_);
        std::swap(innerBlockUsed_, other.innerBlockUsed_);
        std::swap(innerFree_, other.innerFree_);
        std::swap(cursorHits_, other.cursorHits_);
        std::swap(nodeSplits_, other.nodeSplits_);
    }
    return *this;
}

ExtentMap::Leaf *
ExtentMap::allocLeaf()
{
    if (leafFree_ != nullptr) {
        Leaf *leaf = leafFree_;
        leafFree_ = leaf->next;
        leaf->n = 0;
        leaf->prev = leaf->next = nullptr;
        leaf->parent = nullptr;
        return leaf;
    }
    if (leafBlocks_.empty() || leafBlockUsed_ == kNodesPerBlock) {
        leafBlocks_.push_back(
            std::make_unique<Leaf[]>(kNodesPerBlock));
        leafBlockUsed_ = 0;
    }
    return &leafBlocks_.back()[leafBlockUsed_++];
}

void
ExtentMap::freeLeaf(Leaf *leaf)
{
    if (cursor_ == leaf)
        cursor_ = nullptr;
    leaf->next = leafFree_;
    leafFree_ = leaf;
}

ExtentMap::Inner *
ExtentMap::allocInner()
{
    if (innerFree_ != nullptr) {
        Inner *inner = innerFree_;
        innerFree_ = inner->parent;
        inner->n = 0;
        inner->parent = nullptr;
        inner->leafChildren = true;
        return inner;
    }
    if (innerBlocks_.empty() || innerBlockUsed_ == kNodesPerBlock) {
        innerBlocks_.push_back(
            std::make_unique<Inner[]>(kNodesPerBlock));
        innerBlockUsed_ = 0;
    }
    return &innerBlocks_.back()[innerBlockUsed_++];
}

void
ExtentMap::freeInner(Inner *inner)
{
    // The parent pointer doubles as the free-list link.
    inner->parent = innerFree_;
    innerFree_ = inner;
}

ExtentMap::Leaf *
ExtentMap::descend(Lba lba) const
{
    if (root_ == nullptr)
        return nullptr;
    void *node = root_;
    for (std::uint32_t level = height_; level > 0; --level) {
        const Inner *inner = static_cast<const Inner *>(node);
        // First child whose separator exceeds lba; keys[0] is
        // conceptual negative infinity, so the search starts at 1.
        std::uint32_t lo = 1;
        std::uint32_t hi = inner->n;
        while (lo < hi) {
            const std::uint32_t mid = (lo + hi) / 2;
            if (inner->keys[mid] <= lba)
                lo = mid + 1;
            else
                hi = mid;
        }
        node = inner->children[lo - 1];
    }
    return static_cast<Leaf *>(node);
}

ExtentMap::Leaf *
ExtentMap::leafForRead(Lba lba) const
{
    // The cursor's window is [entries[0].lba, next leaf's first
    // lba): any entry relevant to lba — its predecessor included —
    // is reachable from this leaf via the chain, so the hit needs
    // no descent and is immune to stale separators.
    Leaf *c = cursor_;
    if (c != nullptr && c->n > 0 && c->entries[0].lba <= lba &&
        (c->next == nullptr || lba < c->next->entries[0].lba)) {
        cursorHits_->add();
        return c;
    }
    Leaf *leaf = descend(lba);
    cursor_ = leaf;
    return leaf;
}

ExtentMap::Pos
ExtentMap::upperBound(Lba lba) const
{
    Leaf *leaf = leafForRead(lba);
    if (leaf == nullptr)
        return {};
    std::uint32_t lo = 0;
    std::uint32_t hi = leaf->n;
    while (lo < hi) {
        const std::uint32_t mid = (lo + hi) / 2;
        if (leaf->entries[mid].lba <= lba)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < leaf->n)
        return {leaf, lo};
    return leaf->next != nullptr ? Pos{leaf->next, 0} : Pos{};
}

ExtentMap::Pos
ExtentMap::lowerBound(Lba lba) const
{
    Leaf *leaf = leafForRead(lba);
    if (leaf == nullptr)
        return {};
    std::uint32_t lo = 0;
    std::uint32_t hi = leaf->n;
    while (lo < hi) {
        const std::uint32_t mid = (lo + hi) / 2;
        if (leaf->entries[mid].lba < lba)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < leaf->n)
        return {leaf, lo};
    return leaf->next != nullptr ? Pos{leaf->next, 0} : Pos{};
}

bool
ExtentMap::tryPrev(Pos &p) const
{
    if (p.leaf == nullptr) {
        if (lastLeaf_ != nullptr && lastLeaf_->n > 0) {
            p = {lastLeaf_, lastLeaf_->n - 1};
            return true;
        }
        return false;
    }
    if (p.idx > 0) {
        --p.idx;
        return true;
    }
    if (p.leaf->prev != nullptr) {
        p = {p.leaf->prev, p.leaf->prev->n - 1};
        return true;
    }
    return false;
}

void
ExtentMap::next(Pos &p) const
{
    if (++p.idx >= p.leaf->n)
        p = p.leaf->next != nullptr ? Pos{p.leaf->next, 0} : Pos{};
}

void
ExtentMap::insertIntoParent(void *left, Lba separator, void *right,
                            bool children_are_leaves)
{
    Inner *parent =
        children_are_leaves
            ? static_cast<Leaf *>(left)->parent
            : static_cast<Inner *>(left)->parent;

    if (parent == nullptr) {
        // left was the root; grow a new root above it.
        Inner *root = allocInner();
        root->leafChildren = children_are_leaves;
        root->n = 2;
        root->keys[0] = 0; // conceptual -inf, never compared
        root->keys[1] = separator;
        root->children[0] = left;
        root->children[1] = right;
        if (children_are_leaves) {
            static_cast<Leaf *>(left)->parent = root;
            static_cast<Leaf *>(right)->parent = root;
        } else {
            static_cast<Inner *>(left)->parent = root;
            static_cast<Inner *>(right)->parent = root;
        }
        root_ = root;
        ++height_;
        return;
    }

    std::uint32_t pos = 0;
    while (pos < parent->n && parent->children[pos] != left)
        ++pos;
    panicIf(pos == parent->n,
            "ExtentMap: child not found in its parent");
    std::uint32_t insert_idx = pos + 1;

    Inner *target = parent;
    if (parent->n == kNodeCapacity) {
        // Split the parent, pushing its middle key up, then insert
        // into whichever half now owns insert_idx's window.
        constexpr std::uint32_t keep = kNodeCapacity / 2;
        Inner *sibling = allocInner();
        sibling->leafChildren = parent->leafChildren;
        sibling->n = kNodeCapacity - keep;
        const Lba up_key = parent->keys[keep];
        for (std::uint32_t i = keep; i < kNodeCapacity; ++i) {
            sibling->keys[i - keep] = parent->keys[i];
            sibling->children[i - keep] = parent->children[i];
            if (sibling->leafChildren)
                static_cast<Leaf *>(parent->children[i])->parent =
                    sibling;
            else
                static_cast<Inner *>(parent->children[i])->parent =
                    sibling;
        }
        parent->n = keep;
        nodeSplits_->add();
        insertIntoParent(parent, up_key, sibling,
                         /*children_are_leaves=*/false);
        if (insert_idx > keep) {
            target = sibling;
            insert_idx -= keep;
        }
    }

    panicIf(target->n >= kNodeCapacity,
            "ExtentMap: inner node overflow");
    for (std::uint32_t i = target->n; i > insert_idx; --i) {
        target->keys[i] = target->keys[i - 1];
        target->children[i] = target->children[i - 1];
    }
    target->keys[insert_idx] = separator;
    target->children[insert_idx] = right;
    ++target->n;
    if (target->leafChildren)
        static_cast<Leaf *>(right)->parent = target;
    else
        static_cast<Inner *>(right)->parent = target;
}

ExtentMap::Leaf *
ExtentMap::splitLeaf(Leaf *leaf)
{
    constexpr std::uint32_t keep = kNodeCapacity / 2;
    Leaf *right = allocLeaf();
    right->n = leaf->n - keep;
    std::memcpy(right->entries, leaf->entries + keep,
                sizeof(Entry) * right->n);
    leaf->n = keep;

    right->prev = leaf;
    right->next = leaf->next;
    if (leaf->next != nullptr)
        leaf->next->prev = right;
    else
        lastLeaf_ = right;
    leaf->next = right;

    nodeSplits_->add();
    insertIntoParent(leaf, right->entries[0].lba, right,
                     /*children_are_leaves=*/true);
    return right;
}

ExtentMap::Pos
ExtentMap::insertEntry(const Entry &entry)
{
    if (root_ == nullptr) {
        Leaf *leaf = allocLeaf();
        root_ = leaf;
        height_ = 0;
        firstLeaf_ = lastLeaf_ = leaf;
    }

    // Inserts must route through the separators (not the cursor):
    // the routing invariant guarantees the routed leaf is also the
    // globally sorted position.
    Leaf *leaf = descend(entry.lba);
    std::uint32_t lo = 0;
    std::uint32_t hi = leaf->n;
    while (lo < hi) {
        const std::uint32_t mid = (lo + hi) / 2;
        if (leaf->entries[mid].lba < entry.lba)
            lo = mid + 1;
        else
            hi = mid;
    }
    panicIf(lo < leaf->n && leaf->entries[lo].lba == entry.lba,
            "ExtentMap::mapRange: range not cleared");

    if (leaf->n == kNodeCapacity) {
        Leaf *right = splitLeaf(leaf);
        // Equal-to-separator routes left (duplicates panic above),
        // matching the strictly-greater window check.
        if (lo > leaf->n) {
            lo -= leaf->n;
            leaf = right;
        }
    }

    std::memmove(leaf->entries + lo + 1, leaf->entries + lo,
                 sizeof(Entry) * (leaf->n - lo));
    leaf->entries[lo] = entry;
    ++leaf->n;
    ++entryCount_;
    cursor_ = leaf;
    return {leaf, lo};
}

void
ExtentMap::collapseRoot()
{
    while (height_ > 0) {
        Inner *root = static_cast<Inner *>(root_);
        if (root->n > 1)
            return;
        panicIf(root->n == 0, "ExtentMap: empty inner root");
        root_ = root->children[0];
        if (root->leafChildren)
            static_cast<Leaf *>(root_)->parent = nullptr;
        else
            static_cast<Inner *>(root_)->parent = nullptr;
        freeInner(root);
        --height_;
    }
}

void
ExtentMap::removeChild(Inner *parent, const void *child)
{
    std::uint32_t pos = 0;
    while (pos < parent->n && parent->children[pos] != child)
        ++pos;
    panicIf(pos == parent->n,
            "ExtentMap: freed child not found in its parent");
    for (std::uint32_t i = pos + 1; i < parent->n; ++i) {
        parent->keys[i - 1] = parent->keys[i];
        parent->children[i - 1] = parent->children[i];
    }
    --parent->n;

    if (parent->n == 0) {
        // Single-child chains below the root are never rebalanced,
        // so a drained inner node cascades its own removal upward;
        // a drained root means the tree is empty.
        if (parent == root_) {
            freeInner(parent);
            root_ = nullptr;
            height_ = 0;
            return;
        }
        Inner *grand = parent->parent;
        freeInner(parent);
        removeChild(grand, parent);
        return;
    }
    if (parent == root_)
        collapseRoot();
}

void
ExtentMap::removeLeaf(Leaf *leaf)
{
    if (leaf->prev != nullptr)
        leaf->prev->next = leaf->next;
    else
        firstLeaf_ = leaf->next;
    if (leaf->next != nullptr)
        leaf->next->prev = leaf->prev;
    else
        lastLeaf_ = leaf->prev;

    Inner *parent = leaf->parent;
    freeLeaf(leaf);
    if (parent == nullptr) {
        // The leaf was the root.
        root_ = nullptr;
        height_ = 0;
        firstLeaf_ = lastLeaf_ = nullptr;
        return;
    }
    removeChild(parent, leaf);
}

ExtentMap::Pos
ExtentMap::erasePos(Pos p)
{
    Leaf *leaf = p.leaf;
    std::memmove(leaf->entries + p.idx, leaf->entries + p.idx + 1,
                 sizeof(Entry) * (leaf->n - p.idx - 1));
    --leaf->n;
    --entryCount_;

    if (leaf->n == 0) {
        Leaf *following = leaf->next;
        removeLeaf(leaf);
        return following != nullptr ? Pos{following, 0} : Pos{};
    }
    if (p.idx < leaf->n)
        return p;
    return leaf->next != nullptr ? Pos{leaf->next, 0} : Pos{};
}

void
ExtentMap::splitAt(Lba sector)
{
    Pos p = upperBound(sector);
    if (!tryPrev(p))
        return;
    Entry &entry = p.leaf->entries[p.idx];
    if (entry.lba >= sector || entry.lba + entry.count <= sector)
        return;

    const SectorCount left_count = sector - entry.lba;
    const Entry right{sector, entry.pba + left_count,
                      entry.count - left_count};
    entry.count = left_count;
    insertEntry(right);
}

void
ExtentMap::eraseRange(Lba lo, Lba hi,
                      std::vector<SectorExtent> *displaced)
{
    Pos it = lowerBound(lo);
    while (it.leaf != nullptr && it.leaf->entries[it.idx].lba < hi) {
        const Entry &entry = it.leaf->entries[it.idx];
        panicIf(entry.lba + entry.count > hi,
                "ExtentMap::eraseRange: entry crosses range end");
        if (displaced != nullptr)
            displaced->push_back(
                SectorExtent{entry.pba, entry.count});
        mappedSectors_ -= entry.count;
        it = erasePos(it);
    }
}

ExtentMap::Pos
ExtentMap::tryMergeWithPrev(Pos p)
{
    if (p.leaf == nullptr)
        return p;
    Pos prev_pos = p;
    if (!tryPrev(prev_pos))
        return p;
    Entry &prev = prev_pos.leaf->entries[prev_pos.idx];
    const Entry &cur = p.leaf->entries[p.idx];
    const bool lba_adjacent = prev.lba + prev.count == cur.lba;
    const bool pba_adjacent = prev.pba + prev.count == cur.pba;
    if (!lba_adjacent || !pba_adjacent)
        return p;
    // The merged run lives where prev already is, so its leaf keeps
    // entries inside its routed window; erasing cur only shifts
    // entries after it, leaving prev's slot intact.
    prev.count += cur.count;
    erasePos(p);
    return prev_pos;
}

void
ExtentMap::mapRange(Lba lba, Pba pba, SectorCount count,
                    std::vector<SectorExtent> *displaced)
{
    panicIf(count == 0, "ExtentMap::mapRange: empty range");
    const Lba end = lba + count;

    // Carve out the target range, then drop whatever was inside it.
    splitAt(lba);
    splitAt(end);
    eraseRange(lba, end, displaced);

    Pos it = insertEntry(Entry{lba, pba, count});
    mappedSectors_ += count;

    // Coalesce with both neighbors where logically and physically
    // contiguous.
    it = tryMergeWithPrev(it);
    Pos after = it;
    next(after);
    if (after.leaf != nullptr)
        tryMergeWithPrev(after);
}

void
ExtentMap::translateInto(const SectorExtent &extent,
                         SegmentBuffer &out) const
{
    out.clear();
    translateAppend(extent, out);
}

void
ExtentMap::translateAppend(const SectorExtent &extent,
                           SegmentBuffer &out) const
{
    if (extent.empty())
        return;

    Lba cursor = extent.start;
    const Lba end = extent.end();

    Pos it = upperBound(cursor);
    tryPrev(it);

    auto emit_hole = [&out](Lba from, Lba to) {
        out.push(Segment{SectorExtent{from, to - from}, from, false});
    };

    for (; it.leaf != nullptr && it.leaf->entries[it.idx].lba < end;
         next(it)) {
        const Entry &entry = it.leaf->entries[it.idx];
        const Lba entry_end = entry.lba + entry.count;
        if (entry_end <= cursor)
            continue;
        if (entry.lba > cursor)
            emit_hole(cursor, entry.lba);
        const Lba seg_lba = std::max(cursor, entry.lba);
        const Lba seg_end = std::min(end, entry_end);
        out.push(Segment{SectorExtent{seg_lba, seg_end - seg_lba},
                         entry.pba + (seg_lba - entry.lba), true});
        cursor = seg_end;
        if (cursor >= end)
            break;
    }
    if (it.leaf != nullptr)
        cursor_ = it.leaf;
    if (cursor < end)
        emit_hole(cursor, end);
}

std::vector<Segment>
ExtentMap::translate(const SectorExtent &extent) const
{
    SegmentBuffer buffer;
    translateInto(extent, buffer);
    return std::move(buffer).take();
}

std::size_t
ExtentMap::fragmentCount(const SectorExtent &extent) const
{
    if (extent.empty())
        return 0;

    std::size_t fragments = 0;
    Lba cursor = extent.start;
    const Lba end = extent.end();

    Pos it = upperBound(cursor);
    tryPrev(it);

    for (; it.leaf != nullptr && it.leaf->entries[it.idx].lba < end;
         next(it)) {
        const Entry &entry = it.leaf->entries[it.idx];
        const Lba entry_end = entry.lba + entry.count;
        if (entry_end <= cursor)
            continue;
        if (entry.lba > cursor)
            ++fragments; // hole before this entry
        ++fragments;     // the mapped run
        cursor = std::min(end, entry_end);
        if (cursor >= end)
            break;
    }
    if (it.leaf != nullptr)
        cursor_ = it.leaf;
    if (cursor < end)
        ++fragments; // trailing hole
    return fragments;
}

} // namespace logseek::stl
