/**
 * @file
 * Media-cache translation layer — the "simple STL" of paper §II.
 *
 * Existing drive-managed SMR translation layers log updates to a
 * reserved region of the disk (the media cache / E-region) and
 * periodically merge them back into data zones, where data is
 * stored in LBA order. Almost all data therefore stays in logical
 * order — little or no read seek amplification — but at the price
 * of high cleaning overhead: every merge is a read-modify-write of
 * whole zone-sized bands.
 *
 * This layer is the comparator for the paper's full-map
 * log-structured approach: it trades the seek amplification studied
 * in the paper for write amplification and cleaning seeks, both of
 * which the simulator accounts separately.
 */

#ifndef LOGSEEK_STL_MEDIA_CACHE_H
#define LOGSEEK_STL_MEDIA_CACHE_H

#include <cstdint>

#include "stl/extent_map.h"
#include "stl/translation_layer.h"
#include "trace/record.h"

namespace logseek::stl
{

/** Configuration of the media-cache layer. */
struct MediaCacheConfig
{
    /** Capacity of the media-cache region in bytes. */
    std::uint64_t cacheBytes = 64 * kMiB;

    /** Merge back to data zones when this fraction is dirty. */
    double mergeThreshold = 0.8;

    /**
     * Band (zone) granularity of the merge read-modify-write in
     * bytes; drive-managed SMR devices merge whole zones.
     */
    std::uint64_t bandBytes = 16 * kMiB;
};

/**
 * Drive-managed-style translation: data zones hold data at its LBA
 * (identity placement); writes append to a media-cache log region
 * placed above the data zones; when the cache fills past the
 * threshold every dirty band is merged back with a read-modify-
 * write, returning the address space to pure LBA order.
 */
class MediaCacheLayer : public TranslationLayer
{
  public:
    /**
     * @param data_zone_end One past the highest data-zone sector
     *        (the workload's address-space end); the media cache
     *        lives immediately above it.
     * @param config Cache capacity and merge policy.
     */
    MediaCacheLayer(Pba data_zone_end,
                    const MediaCacheConfig &config = {});

    void translateReadInto(const SectorExtent &extent,
                           SegmentBuffer &out) const override;

    void placeWriteInto(const SectorExtent &extent,
                        SegmentBuffer &out) override;

    void translateReadBatchInto(std::span<const SectorExtent> extents,
                                SegmentBufferBatch &out)
        const override;

    /**
     * Batched placement with no merge interleaved — exactly a loop
     * over placeWriteInto. The replay engine does not use this (the
     * layer owes per-record maintenance, see hasMaintenance()); it
     * exists for the batch/scalar differential contract.
     */
    void placeWriteBatchInto(std::span<const SectorExtent> extents,
                             SegmentBufferBatch &out) override;

    bool hasMaintenance() const override { return true; }

    std::size_t staticFragmentCount() const override;

    std::string name() const override { return "media-cache"; }

    void attachJournal(SegmentJournal *journal) override
    {
        journal_ = journal;
    }

    /** Replays cache placements and MergeReset epochs (each merge
     *  drops the map and rewinds the append pointer), then adopts
     *  the recorded cache pointer. */
    MountStats
    mountFromJournal(const SegmentJournal &journal) override;

    /**
     * Background work owed after the last request: when the cache
     * is past its threshold this returns the full merge's media
     * accesses (band reads, cache-fragment reads, band writes, in
     * ascending band order) and resets the cache. Empty otherwise.
     */
    std::vector<MediaAccess> maintenance() override;

    /** Sectors currently dirty in the media cache. */
    SectorCount cacheUsedSectors() const { return cacheUsed_; }

    /** Capacity of the media cache in sectors. */
    SectorCount cacheCapacitySectors() const { return cacheCapacity_; }

    /** First sector of the media-cache region. */
    Pba cacheStart() const { return cacheStart_; }

    /** Number of merges performed so far. */
    std::uint64_t mergeCount() const { return merges_; }

    /** Next cache append position (Fsck and diagnostics). */
    Pba cachePointer() const { return cachePtr_; }

    /** Cache map (read-only; Fsck and diagnostics). */
    const ExtentMap &extentMap() const { return map_; }

  private:
    /** True once the configured merge threshold is exceeded. */
    bool needsMerge() const;

    MediaCacheConfig config_;
    Pba dataZoneEnd_;
    Pba cacheStart_;
    SectorCount cacheCapacity_;
    SectorCount bandSectors_;

    /** LBAs whose newest data lives in the cache region. */
    ExtentMap map_;

    /** Append pointer inside the cache region. */
    Pba cachePtr_;
    SectorCount cacheUsed_ = 0;
    std::uint64_t merges_ = 0;

    /** Durable metadata journal; null = volatile (the default). */
    SegmentJournal *journal_ = nullptr;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_MEDIA_CACHE_H
