#include "finite_log.h"

#include <algorithm>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace logseek::stl
{

namespace
{

/** Pack a stream id into the high half of the journal aux word.
 *  Stream 0 leaves the word untouched, so single-stream journals
 *  stay byte-identical to the historical format. */
std::uint64_t
packAux(std::uint32_t low, std::uint32_t stream)
{
    return static_cast<std::uint64_t>(low) |
           (static_cast<std::uint64_t>(stream) << 32);
}

} // namespace

FiniteLogStructuredLayer::FiniteLogStructuredLayer(
    Pba identity_end, const FiniteLogConfig &config)
    : config_(config), logStart_(identity_end),
      segmentSectors_(bytesToSectors(config.segmentBytes)),
      policy_(gc::makeCleaningPolicy(config.gc.policy))
{
    panicIf(segmentSectors_ == 0,
            "FiniteLogStructuredLayer: segment size must be at "
            "least one sector");
    const SectorCount capacity =
        bytesToSectors(config.capacityBytes);
    const std::uint64_t count = capacity / segmentSectors_;
    panicIf(count < 2,
            "FiniteLogStructuredLayer: need at least two segments");
    panicIf(config.cleanTargetSegments <=
                config.cleanReserveSegments,
            "FiniteLogStructuredLayer: clean target must exceed "
            "the reserve");
    panicIf(config.cleanTargetSegments >= count,
            "FiniteLogStructuredLayer: clean target must be below "
            "the segment count");
    panicIf(config.gc.streams == 0,
            "FiniteLogStructuredLayer: need at least one placement "
            "stream");
    panicIf(config.gc.streams + config.cleanTargetSegments > count,
            "FiniteLogStructuredLayer: streams plus clean target "
            "must not exceed the segment count");
    segments_.resize(count);
    segments_[0].free = false; // stream 0's initial open segment
    streams_.resize(config.gc.streams);
    streams_[0] = {0, logStart_, true};
    if (config.gc.streams > 1)
        router_.emplace(config.gc.streams, config.gc.router);

    auto &registry = telemetry::Registry::global();
    const std::string policy_label =
        std::string("policy=\"") + policy_->name() + "\"";
    gcReclaims_ =
        &registry.counter("gc_reclaims_total", policy_label);
    gcMovedBytes_ =
        &registry.counter("gc_moved_bytes_total", policy_label);
    gcVictimUtilization_ = &registry.histogram(
        "gc_victim_utilization_pct", policy_label);
}

std::uint32_t
FiniteLogStructuredLayer::segmentOf(Pba pba) const
{
    panicIf(pba < logStart_,
            "FiniteLogStructuredLayer: sector below the log");
    const auto index =
        static_cast<std::uint32_t>((pba - logStart_) /
                                   segmentSectors_);
    panicIf(index >= segments_.size(),
            "FiniteLogStructuredLayer: sector beyond the log");
    return index;
}

void
FiniteLogStructuredLayer::adjustLive(const SectorExtent &range,
                                     bool add)
{
    // A range may straddle segment boundaries; split per segment.
    Pba cursor = range.start;
    while (cursor < range.end()) {
        const std::uint32_t seg = segmentOf(cursor);
        const Pba seg_end =
            logStart_ + (seg + 1ULL) * segmentSectors_;
        const SectorCount piece =
            std::min<SectorCount>(range.end(), seg_end) - cursor;
        SegmentState &state = segments_[seg];
        if (add) {
            state.live += piece;
        } else {
            panicIf(state.live < piece,
                    "FiniteLogStructuredLayer: liveness underflow");
            state.live -= piece;
        }
        cursor += piece;
    }
}

void
FiniteLogStructuredLayer::removeReverse(const SectorExtent &range)
{
    auto it = reverse_.upper_bound(range.start);
    if (it != reverse_.begin())
        --it;
    while (it != reverse_.end() && it->first < range.end()) {
        const SectorExtent entry{it->first, it->second.second};
        const Lba entry_lba = it->second.first;
        auto next = std::next(it);
        const auto overlap = intersect(entry, range);
        if (overlap) {
            reverse_.erase(it);
            if (entry.start < overlap->start) {
                reverse_.emplace(
                    entry.start,
                    std::make_pair(entry_lba,
                                   overlap->start - entry.start));
            }
            if (overlap->end() < entry.end()) {
                reverse_.emplace(
                    overlap->end(),
                    std::make_pair(entry_lba +
                                       (overlap->end() - entry.start),
                                   entry.end() - overlap->end()));
            }
        }
        it = next;
    }
}

void
FiniteLogStructuredLayer::openFreeSegment(std::uint32_t sid)
{
    for (std::uint32_t i = 0; i < segments_.size(); ++i) {
        if (segments_[i].free) {
            segments_[i].free = false;
            streams_[sid] = {
                i, logStart_ + static_cast<Pba>(i) * segmentSectors_,
                true};
            return;
        }
    }
    fatal("finite log out of space: no free segment to open "
          "(cleaning could not keep up; increase capacityBytes)");
}

void
FiniteLogStructuredLayer::append(Lba lba, SectorCount count,
                                 SegmentBuffer &out,
                                 std::uint32_t sid)
{
    ++tick_;
    if (journal_ != nullptr)
        journalScratch_.clear();
    StreamState &stream = streams_[sid];
    if (!stream.opened)
        openFreeSegment(sid);
    while (count > 0) {
        const Pba open_end =
            logStart_ + (static_cast<Pba>(stream.openSegment) + 1) *
                            segmentSectors_;
        if (stream.writePtr == open_end)
            openFreeSegment(sid);
        const Pba open_limit =
            logStart_ + (static_cast<Pba>(stream.openSegment) + 1) *
                            segmentSectors_;
        const SectorCount take = std::min<SectorCount>(
            count, open_limit - stream.writePtr);

        displacedScratch_.clear();
        map_.mapRange(lba, stream.writePtr, take,
                      &displacedScratch_);
        for (const auto &dead : displacedScratch_) {
            // Identity holes are never in the forward map, so every
            // displaced range is log-resident.
            adjustLive(dead, false);
            removeReverse(dead);
        }
        reverse_.emplace(stream.writePtr,
                         std::make_pair(lba, take));
        adjustLive({stream.writePtr, take}, true);
        segments_[stream.openSegment].lastWrite = tick_;

        out.push(Segment{SectorExtent{lba, take}, stream.writePtr,
                         true});
        if (journal_ != nullptr)
            journalScratch_.push_back({lba, stream.writePtr, take});
        stream.writePtr += take;
        lba += take;
        count -= take;
    }
    // One epoch per append (host write or cleaning re-append); the
    // post-op write pointer and open segment ride along so mount
    // never re-derives free-segment arithmetic. The owning stream
    // travels in the aux high half.
    if (journal_ != nullptr)
        journal_->record(JournalRecordKind::Placement,
                         stream.writePtr,
                         packAux(stream.openSegment, sid),
                         journalScratch_);
}

void
FiniteLogStructuredLayer::translateReadInto(
    const SectorExtent &extent, SegmentBuffer &out) const
{
    panicIf(extent.empty(), "FiniteLogStructuredLayer: empty read");
    map_.translateInto(extent, out);
}

void
FiniteLogStructuredLayer::placeWriteInto(const SectorExtent &extent,
                                         SegmentBuffer &out)
{
    panicIf(extent.empty(), "FiniteLogStructuredLayer: empty write");
    panicIf(extent.end() > logStart_,
            "FiniteLogStructuredLayer: workload LBA above the log "
            "start");
    out.clear();
    const std::uint32_t sid =
        router_ ? router_->route(extent.start, extent.count) : 0;
    append(extent.start, extent.count, out, sid);
}

void
FiniteLogStructuredLayer::relocateInto(const SectorExtent &extent,
                                       SegmentBuffer &out)
{
    panicIf(extent.empty(),
            "FiniteLogStructuredLayer: empty relocate");
    panicIf(extent.end() > logStart_,
            "FiniteLogStructuredLayer: workload LBA above the log "
            "start");
    out.clear();
    append(extent.start, extent.count, out, coldStream());
}

void
FiniteLogStructuredLayer::translateReadBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
    const
{
    out.clear();
    for (const SectorExtent &extent : extents) {
        panicIf(extent.empty(),
                "FiniteLogStructuredLayer: empty read");
        map_.translateAppend(extent, out.flat());
        out.endRecord();
    }
}

void
FiniteLogStructuredLayer::placeWriteBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
{
    out.clear();
    for (const SectorExtent &extent : extents) {
        panicIf(extent.empty(),
                "FiniteLogStructuredLayer: empty write");
        panicIf(extent.end() > logStart_,
                "FiniteLogStructuredLayer: workload LBA above the "
                "log start");
        const std::uint32_t sid =
            router_ ? router_->route(extent.start, extent.count)
                    : 0;
        append(extent.start, extent.count, out.flat(), sid);
        out.endRecord();
    }
}

std::size_t
FiniteLogStructuredLayer::staticFragmentCount() const
{
    return map_.entryCount();
}

std::uint32_t
FiniteLogStructuredLayer::freeSegments() const
{
    std::uint32_t count = 0;
    for (const auto &segment : segments_) {
        if (segment.free)
            ++count;
    }
    return count;
}

SectorCount
FiniteLogStructuredLayer::segmentLive(std::uint32_t i) const
{
    panicIf(i >= segments_.size(),
            "FiniteLogStructuredLayer: segment index out of range");
    return segments_[i].live;
}

bool
FiniteLogStructuredLayer::segmentOpen(std::uint32_t i) const
{
    for (const StreamState &stream : streams_) {
        if (stream.opened && stream.openSegment == i)
            return true;
    }
    return false;
}

std::vector<MediaAccess>
FiniteLogStructuredLayer::maintenance()
{
    std::vector<MediaAccess> accesses;
    // Hysteresis: cleaning starts when the reserve is reached and
    // runs until the target is restored (policy-overridable).
    if (!policy_->startCleaning(freeSegments(),
                                config_.cleanReserveSegments))
        return accesses;
    while (policy_->continueCleaning(freeSegments(),
                                     config_.cleanTargetSegments)) {
        const std::optional<std::uint32_t> selected =
            policy_->selectVictim(*this);
        if (!selected) {
            // All closed segments are fully live: compaction has
            // nothing to reclaim right now. That is fine as long
            // as we are above the reserve; below it the log is
            // genuinely overcommitted.
            if (freeSegments() > config_.cleanReserveSegments)
                break;
            fatal("finite log overcommitted: cleaning cannot "
                  "reclaim space (live data exceeds capacity "
                  "headroom)");
        }
        const std::uint32_t victim = *selected;
        const SectorCount victim_live = segments_[victim].live;
        gcVictimLiveBytes_ += sectorsToBytes(victim_live);
        gcVictimSpanBytes_ += sectorsToBytes(segmentSectors_);
        gcReclaims_->add();
        gcMovedBytes_->add(sectorsToBytes(victim_live));
        gcVictimUtilization_->record(victim_live * 100 /
                                     segmentSectors_);

        // Move the victim's live extents to the frontier.
        const Pba victim_start =
            logStart_ + static_cast<Pba>(victim) * segmentSectors_;
        const SectorExtent victim_extent{victim_start,
                                         segmentSectors_};
        std::vector<std::pair<Pba, std::pair<Lba, SectorCount>>>
            live;
        for (auto it = reverse_.lower_bound(victim_start);
             it != reverse_.end() &&
             it->first < victim_extent.end();
             ++it) {
            live.emplace_back(*it);
        }

        // Zone-granular policies stream the whole victim zone in
        // one sequential read (a single seek) instead of seeking
        // to each live extent individually.
        const bool whole_zone = policy_->wholeZoneRead();
        if (whole_zone && victim_live > 0) {
            accesses.push_back(
                {victim_extent, trace::IoType::Read});
        }

        for (const auto &[pba, entry] : live) {
            const auto &[lba, count] = entry;
            // The entry may have been displaced by an earlier
            // rewrite in this same pass; re-check residency.
            if (!reverse_.contains(pba))
                continue;
            if (!whole_zone) {
                accesses.push_back({SectorExtent{pba, count},
                                    trace::IoType::Read});
            }
            cleanScratch_.clear();
            append(lba, count, cleanScratch_, coldStream());
            for (const Segment &segment : cleanScratch_) {
                accesses.push_back({segment.physical(),
                                    trace::IoType::Write});
            }
        }
        panicIf(segments_[victim].live != 0,
                "FiniteLogStructuredLayer: victim still live after "
                "cleaning");
        segments_[victim].free = true;
        ++cleanings_;
        if (journal_ != nullptr) {
            // Cleaning re-appends went to the cold stream; record
            // its frontier (logStart_ sentinel while unopened, i.e.
            // the victim was fully dead and nothing moved).
            const StreamState &cold = streams_[coldStream()];
            journal_->record(JournalRecordKind::SegmentReset,
                             cold.opened ? cold.writePtr
                                         : logStart_,
                             packAux(victim, coldStream()), {});
        }
    }
    return accesses;
}

MountStats
FiniteLogStructuredLayer::mountFromJournal(
    const SegmentJournal &journal)
{
    const telemetry::ScopedTimer timer(
        &telemetry::Registry::global().histogram(
            "mount_latency_ns"));
    panicIf(!map_.empty() || !reverse_.empty(),
            "FiniteLogStructuredLayer: mount on a non-fresh layer");
    const JournalScan scan = scanJournal(journal.image());
    for (const JournalRecord &record : scan.records) {
        switch (record.kind) {
        case JournalRecordKind::Placement: {
            ++tick_;
            for (const JournalEntry &entry : record.entries) {
                displacedScratch_.clear();
                map_.mapRange(entry.lba, entry.pba, entry.count,
                              &displacedScratch_);
                for (const auto &dead : displacedScratch_) {
                    adjustLive(dead, false);
                    removeReverse(dead);
                }
                reverse_.emplace(
                    entry.pba,
                    std::make_pair(entry.lba, entry.count));
                adjustLive({entry.pba, entry.count}, true);
                // Append never splits an entry across segments.
                const std::uint32_t seg = segmentOf(entry.pba);
                segments_[seg].free = false;
                segments_[seg].lastWrite = tick_;
            }
            const auto open =
                static_cast<std::uint32_t>(record.aux);
            const auto sid =
                static_cast<std::uint32_t>(record.aux >> 32);
            panicIf(sid >= streams_.size(),
                    "FiniteLogStructuredLayer: journal references "
                    "a stream beyond the configuration");
            panicIf(open >= segments_.size(),
                    "FiniteLogStructuredLayer: journal opens a "
                    "segment beyond the log");
            segments_[open].free = false;
            streams_[sid] = {open, record.frontierAfter, true};
            break;
        }
        case JournalRecordKind::SegmentReset: {
            const auto victim =
                static_cast<std::uint32_t>(record.aux);
            const auto sid =
                static_cast<std::uint32_t>(record.aux >> 32);
            panicIf(victim >= segments_.size(),
                    "FiniteLogStructuredLayer: journal reclaims a "
                    "segment beyond the log");
            panicIf(sid >= streams_.size(),
                    "FiniteLogStructuredLayer: journal reset "
                    "references a stream beyond the configuration");
            panicIf(segments_[victim].live != 0,
                    "FiniteLogStructuredLayer: journal reclaims a "
                    "live segment");
            segments_[victim].free = true;
            // The reset's frontier belongs to the cleaning stream;
            // a logStart_ record while the stream is still closed
            // means the victim was fully dead and nothing moved.
            if (streams_[sid].opened)
                streams_[sid].writePtr = record.frontierAfter;
            ++cleanings_;
            break;
        }
        case JournalRecordKind::MergeReset:
            fatal("FiniteLogStructuredLayer: foreign record kind "
                  "in journal");
        }
    }
    return mountStatsFrom(scan);
}

} // namespace logseek::stl
