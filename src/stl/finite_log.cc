#include "finite_log.h"

#include <algorithm>
#include <limits>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace logseek::stl
{

FiniteLogStructuredLayer::FiniteLogStructuredLayer(
    Pba identity_end, const FiniteLogConfig &config)
    : config_(config), logStart_(identity_end),
      segmentSectors_(bytesToSectors(config.segmentBytes)),
      writePtr_(identity_end)
{
    panicIf(segmentSectors_ == 0,
            "FiniteLogStructuredLayer: segment size must be at "
            "least one sector");
    const SectorCount capacity =
        bytesToSectors(config.capacityBytes);
    const std::uint64_t count = capacity / segmentSectors_;
    panicIf(count < 2,
            "FiniteLogStructuredLayer: need at least two segments");
    panicIf(config.cleanTargetSegments <=
                config.cleanReserveSegments,
            "FiniteLogStructuredLayer: clean target must exceed "
            "the reserve");
    panicIf(config.cleanTargetSegments >= count,
            "FiniteLogStructuredLayer: clean target must be below "
            "the segment count");
    segments_.resize(count);
    segments_[0].free = false; // the initial open segment
}

std::uint32_t
FiniteLogStructuredLayer::segmentOf(Pba pba) const
{
    panicIf(pba < logStart_,
            "FiniteLogStructuredLayer: sector below the log");
    const auto index =
        static_cast<std::uint32_t>((pba - logStart_) /
                                   segmentSectors_);
    panicIf(index >= segments_.size(),
            "FiniteLogStructuredLayer: sector beyond the log");
    return index;
}

void
FiniteLogStructuredLayer::adjustLive(const SectorExtent &range,
                                     bool add)
{
    // A range may straddle segment boundaries; split per segment.
    Pba cursor = range.start;
    while (cursor < range.end()) {
        const std::uint32_t seg = segmentOf(cursor);
        const Pba seg_end =
            logStart_ + (seg + 1ULL) * segmentSectors_;
        const SectorCount piece =
            std::min<SectorCount>(range.end(), seg_end) - cursor;
        SegmentState &state = segments_[seg];
        if (add) {
            state.live += piece;
        } else {
            panicIf(state.live < piece,
                    "FiniteLogStructuredLayer: liveness underflow");
            state.live -= piece;
        }
        cursor += piece;
    }
}

void
FiniteLogStructuredLayer::removeReverse(const SectorExtent &range)
{
    auto it = reverse_.upper_bound(range.start);
    if (it != reverse_.begin())
        --it;
    while (it != reverse_.end() && it->first < range.end()) {
        const SectorExtent entry{it->first, it->second.second};
        const Lba entry_lba = it->second.first;
        auto next = std::next(it);
        const auto overlap = intersect(entry, range);
        if (overlap) {
            reverse_.erase(it);
            if (entry.start < overlap->start) {
                reverse_.emplace(
                    entry.start,
                    std::make_pair(entry_lba,
                                   overlap->start - entry.start));
            }
            if (overlap->end() < entry.end()) {
                reverse_.emplace(
                    overlap->end(),
                    std::make_pair(entry_lba +
                                       (overlap->end() - entry.start),
                                   entry.end() - overlap->end()));
            }
        }
        it = next;
    }
}

void
FiniteLogStructuredLayer::openFreeSegment()
{
    for (std::uint32_t i = 0; i < segments_.size(); ++i) {
        if (segments_[i].free) {
            segments_[i].free = false;
            openSegment_ = i;
            writePtr_ = logStart_ + static_cast<Pba>(i) *
                                        segmentSectors_;
            return;
        }
    }
    fatal("finite log out of space: no free segment to open "
          "(cleaning could not keep up; increase capacityBytes)");
}

void
FiniteLogStructuredLayer::append(Lba lba, SectorCount count,
                                 SegmentBuffer &out)
{
    if (journal_ != nullptr)
        journalScratch_.clear();
    while (count > 0) {
        const Pba open_end =
            logStart_ +
            (static_cast<Pba>(openSegment_) + 1) * segmentSectors_;
        if (writePtr_ == open_end)
            openFreeSegment();
        const Pba open_limit =
            logStart_ +
            (static_cast<Pba>(openSegment_) + 1) * segmentSectors_;
        const SectorCount take =
            std::min<SectorCount>(count, open_limit - writePtr_);

        displacedScratch_.clear();
        map_.mapRange(lba, writePtr_, take, &displacedScratch_);
        for (const auto &dead : displacedScratch_) {
            // Identity holes are never in the forward map, so every
            // displaced range is log-resident.
            adjustLive(dead, false);
            removeReverse(dead);
        }
        reverse_.emplace(writePtr_, std::make_pair(lba, take));
        adjustLive({writePtr_, take}, true);

        out.push(Segment{SectorExtent{lba, take}, writePtr_, true});
        if (journal_ != nullptr)
            journalScratch_.push_back({lba, writePtr_, take});
        writePtr_ += take;
        lba += take;
        count -= take;
    }
    // One epoch per append (host write or cleaning re-append); the
    // post-op write pointer and open segment ride along so mount
    // never re-derives free-segment arithmetic.
    if (journal_ != nullptr)
        journal_->record(JournalRecordKind::Placement, writePtr_,
                         openSegment_, journalScratch_);
}

void
FiniteLogStructuredLayer::translateReadInto(
    const SectorExtent &extent, SegmentBuffer &out) const
{
    panicIf(extent.empty(), "FiniteLogStructuredLayer: empty read");
    map_.translateInto(extent, out);
}

void
FiniteLogStructuredLayer::placeWriteInto(const SectorExtent &extent,
                                         SegmentBuffer &out)
{
    panicIf(extent.empty(), "FiniteLogStructuredLayer: empty write");
    panicIf(extent.end() > logStart_,
            "FiniteLogStructuredLayer: workload LBA above the log "
            "start");
    out.clear();
    append(extent.start, extent.count, out);
}

void
FiniteLogStructuredLayer::translateReadBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
    const
{
    out.clear();
    for (const SectorExtent &extent : extents) {
        panicIf(extent.empty(),
                "FiniteLogStructuredLayer: empty read");
        map_.translateAppend(extent, out.flat());
        out.endRecord();
    }
}

void
FiniteLogStructuredLayer::placeWriteBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
{
    out.clear();
    for (const SectorExtent &extent : extents) {
        panicIf(extent.empty(),
                "FiniteLogStructuredLayer: empty write");
        panicIf(extent.end() > logStart_,
                "FiniteLogStructuredLayer: workload LBA above the "
                "log start");
        append(extent.start, extent.count, out.flat());
        out.endRecord();
    }
}

std::size_t
FiniteLogStructuredLayer::staticFragmentCount() const
{
    return map_.entryCount();
}

std::uint32_t
FiniteLogStructuredLayer::freeSegments() const
{
    std::uint32_t count = 0;
    for (const auto &segment : segments_) {
        if (segment.free)
            ++count;
    }
    return count;
}

SectorCount
FiniteLogStructuredLayer::segmentLive(std::uint32_t i) const
{
    panicIf(i >= segments_.size(),
            "FiniteLogStructuredLayer: segment index out of range");
    return segments_[i].live;
}

std::vector<MediaAccess>
FiniteLogStructuredLayer::maintenance()
{
    std::vector<MediaAccess> accesses;
    // Hysteresis: cleaning starts when the reserve is reached and
    // runs until the target is restored.
    if (freeSegments() > config_.cleanReserveSegments)
        return accesses;
    while (freeSegments() < config_.cleanTargetSegments) {
        // Greedy victim: the closed segment with the least live
        // data. Fully dead segments are reclaimed for free.
        std::uint32_t victim = 0;
        SectorCount best = std::numeric_limits<SectorCount>::max();
        bool found = false;
        for (std::uint32_t i = 0; i < segments_.size(); ++i) {
            if (segments_[i].free || i == openSegment_)
                continue;
            if (segments_[i].live < best) {
                best = segments_[i].live;
                victim = i;
                found = true;
            }
        }
        if (!found || best >= segmentSectors_) {
            // All closed segments are fully live: compaction has
            // nothing to reclaim right now. That is fine as long
            // as we are above the reserve; below it the log is
            // genuinely overcommitted.
            if (freeSegments() > config_.cleanReserveSegments)
                break;
            fatal("finite log overcommitted: greedy cleaning "
                  "cannot reclaim space (live data exceeds "
                  "capacity headroom)");
        }

        // Move the victim's live extents to the frontier.
        const Pba victim_start =
            logStart_ + static_cast<Pba>(victim) * segmentSectors_;
        const SectorExtent victim_extent{victim_start,
                                         segmentSectors_};
        std::vector<std::pair<Pba, std::pair<Lba, SectorCount>>>
            live;
        for (auto it = reverse_.lower_bound(victim_start);
             it != reverse_.end() &&
             it->first < victim_extent.end();
             ++it) {
            live.emplace_back(*it);
        }

        for (const auto &[pba, entry] : live) {
            const auto &[lba, count] = entry;
            // The entry may have been displaced by an earlier
            // rewrite in this same pass; re-check residency.
            if (!reverse_.contains(pba))
                continue;
            accesses.push_back(
                {SectorExtent{pba, count}, trace::IoType::Read});
            cleanScratch_.clear();
            append(lba, count, cleanScratch_);
            for (const Segment &segment : cleanScratch_) {
                accesses.push_back({segment.physical(),
                                    trace::IoType::Write});
            }
        }
        panicIf(segments_[victim].live != 0,
                "FiniteLogStructuredLayer: victim still live after "
                "cleaning");
        segments_[victim].free = true;
        ++cleanings_;
        if (journal_ != nullptr)
            journal_->record(JournalRecordKind::SegmentReset,
                             writePtr_, victim, {});
    }
    return accesses;
}

MountStats
FiniteLogStructuredLayer::mountFromJournal(
    const SegmentJournal &journal)
{
    const telemetry::ScopedTimer timer(
        &telemetry::Registry::global().histogram(
            "mount_latency_ns"));
    panicIf(!map_.empty() || !reverse_.empty(),
            "FiniteLogStructuredLayer: mount on a non-fresh layer");
    const JournalScan scan = scanJournal(journal.image());
    for (const JournalRecord &record : scan.records) {
        switch (record.kind) {
        case JournalRecordKind::Placement:
            for (const JournalEntry &entry : record.entries) {
                displacedScratch_.clear();
                map_.mapRange(entry.lba, entry.pba, entry.count,
                              &displacedScratch_);
                for (const auto &dead : displacedScratch_) {
                    adjustLive(dead, false);
                    removeReverse(dead);
                }
                reverse_.emplace(
                    entry.pba,
                    std::make_pair(entry.lba, entry.count));
                adjustLive({entry.pba, entry.count}, true);
                // Append never splits an entry across segments.
                segments_[segmentOf(entry.pba)].free = false;
            }
            openSegment_ =
                static_cast<std::uint32_t>(record.aux);
            writePtr_ = record.frontierAfter;
            break;
        case JournalRecordKind::SegmentReset: {
            const auto victim =
                static_cast<std::uint32_t>(record.aux);
            panicIf(victim >= segments_.size(),
                    "FiniteLogStructuredLayer: journal reclaims a "
                    "segment beyond the log");
            panicIf(segments_[victim].live != 0,
                    "FiniteLogStructuredLayer: journal reclaims a "
                    "live segment");
            segments_[victim].free = true;
            writePtr_ = record.frontierAfter;
            ++cleanings_;
            break;
        }
        case JournalRecordKind::MergeReset:
            fatal("FiniteLogStructuredLayer: foreign record kind "
                  "in journal");
        }
    }
    return mountStatsFrom(scan);
}

} // namespace logseek::stl
