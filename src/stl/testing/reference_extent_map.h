/**
 * @file
 * The original std::map-based ExtentMap, preserved verbatim as a
 * differential-testing oracle.
 *
 * When ExtentMap was rewritten as a B+-tree interval map the old
 * node-per-entry implementation moved here unchanged (only the
 * class name differs). The randomized differential test replays
 * millions of mixed mapRange/translate operations against both and
 * asserts entry-for-entry equality, so any behavioral drift in the
 * tree — coalescing, displaced reporting, hole emission — is caught
 * against the exact seed semantics. perf_extent_map also measures
 * this class to produce the before/after ratio in
 * BENCH_extent_map.json.
 *
 * Test-and-bench-only target; never linked into logseek::stl.
 */

#ifndef LOGSEEK_STL_TESTING_REFERENCE_EXTENT_MAP_H
#define LOGSEEK_STL_TESTING_REFERENCE_EXTENT_MAP_H

#include <cstdint>
#include <map>
#include <vector>

#include "stl/extent_map.h"
#include "util/extent.h"

namespace logseek::stl::testing
{

/** std::map-based interval map with the exact seed semantics. */
class ReferenceExtentMap
{
  public:
    /** See ExtentMap::mapRange. */
    void mapRange(Lba lba, Pba pba, SectorCount count,
                  std::vector<SectorExtent> *displaced = nullptr);

    /** See ExtentMap::translate. */
    std::vector<Segment> translate(const SectorExtent &extent) const;

    /** See ExtentMap::fragmentCount. */
    std::size_t fragmentCount(const SectorExtent &extent) const;

    /** Number of map entries. */
    std::size_t entryCount() const { return entries_.size(); }

    /** Total mapped sectors. */
    SectorCount mappedSectors() const { return mappedSectors_; }

    /** True if no range was ever mapped. */
    bool empty() const { return entries_.empty(); }

    /** Visit every entry in LBA order as (lba, pba, count). */
    template <typename Fn>
    void
    forEachEntry(Fn &&fn) const
    {
        for (const auto &[lba, value] : entries_)
            fn(lba, value.pba, value.count);
    }

  private:
    struct Entry
    {
        Pba pba;
        SectorCount count;
    };

    /** Split any entry straddling sector so no entry crosses it. */
    void splitAt(Lba sector);

    /** Erase all whole entries inside [lo, hi), reporting their
     *  physical ranges through displaced when requested. */
    void eraseRange(Lba lo, Lba hi,
                    std::vector<SectorExtent> *displaced);

    /** Coalesce entry at iterator with its predecessor if possible. */
    std::map<Lba, Entry>::iterator
    tryMergeWithPrev(std::map<Lba, Entry>::iterator it);

    std::map<Lba, Entry> entries_;
    SectorCount mappedSectors_ = 0;
};

} // namespace logseek::stl::testing

#endif // LOGSEEK_STL_TESTING_REFERENCE_EXTENT_MAP_H
