#include "crash_harness.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "stl/conventional.h"
#include "stl/fsck.h"
#include "stl/sharded_translation.h"
#include "stl/testing/reference_extent_map.h"
#include "util/status.h"

namespace logseek::stl::testing
{

namespace
{

/** splitmix64: one well-mixed draw per distinct input. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** FNV-1a fold of one 64-bit word into the running digest. */
void
fold(std::uint64_t &digest, std::uint64_t word)
{
    for (int i = 0; i < 8; ++i) {
        digest ^= (word >> (8 * i)) & 0xffU;
        digest *= 1099511628211ULL;
    }
}

void
foldBytes(std::uint64_t &digest, const std::string &bytes)
{
    fold(digest, bytes.size());
    for (const char c : bytes) {
        digest ^= static_cast<unsigned char>(c);
        digest *= 1099511628211ULL;
    }
}

const char *
kindName(TranslationKind kind)
{
    switch (kind) {
    case TranslationKind::Conventional:
        return "NoLS";
    case TranslationKind::LogStructured:
        return "LS";
    case TranslationKind::FiniteLogStructured:
        return "FiniteLS";
    case TranslationKind::MediaCache:
        return "MediaCache";
    }
    return "?";
}

/**
 * A fresh translation layer with exactly the geometry the replay
 * engine builds for this config — the "new host" the crashed
 * journal is mounted on.
 */
std::unique_ptr<TranslationLayer>
freshLayer(const SimConfig &config, Lba address_space_end)
{
    if (config.translation == TranslationKind::LogStructured &&
        config.replayShards > 1 && address_space_end > 0)
        return std::make_unique<ShardedTranslation>(
            address_space_end,
            static_cast<std::size_t>(config.replayShards),
            config.zones);
    if (config.translation == TranslationKind::LogStructured)
        return std::make_unique<LogStructuredLayer>(
            address_space_end, config.zones);
    if (config.translation == TranslationKind::FiniteLogStructured)
        return std::make_unique<FiniteLogStructuredLayer>(
            address_space_end, config.finiteLog);
    if (config.translation == TranslationKind::MediaCache)
        return std::make_unique<MediaCacheLayer>(
            address_space_end, config.mediaCache);
    return std::make_unique<ConventionalLayer>();
}

/** Replay a scanned record prefix into the differential oracle. */
void
replayIntoOracle(const std::vector<JournalRecord> &records,
                 ReferenceExtentMap &oracle)
{
    for (const JournalRecord &record : records) {
        switch (record.kind) {
        case JournalRecordKind::Placement:
            for (const JournalEntry &entry : record.entries)
                oracle.mapRange(entry.lba, entry.pba, entry.count);
            break;
        case JournalRecordKind::MergeReset:
            // The merge returned everything to LBA order; the
            // cache map starts over.
            oracle = ReferenceExtentMap{};
            break;
        case JournalRecordKind::SegmentReset:
            // Reclaims free media, never logical mappings.
            break;
        }
    }
}

std::string
describeSegment(const Segment &segment)
{
    std::ostringstream out;
    out << "[lba " << segment.logical.start << "+"
        << segment.logical.count << " -> pba " << segment.pba
        << (segment.mapped ? " mapped" : " hole") << "]";
    return out.str();
}

/**
 * Compare the mounted layer's translation of the whole logical
 * space against the oracle's, after the engine's contiguity merge
 * (the sharded layer legitimately splits runs at stripe
 * boundaries). Empty string on agreement.
 */
std::string
compareAgainstOracle(const TranslationLayer &layer,
                     const ReferenceExtentMap &oracle,
                     Lba address_space_end)
{
    const SectorExtent whole{0, address_space_end};
    const std::vector<Segment> got =
        mergePhysicallyContiguous(layer.translateRead(whole));
    const std::vector<Segment> want =
        mergePhysicallyContiguous(oracle.translate(whole));
    if (got.size() != want.size()) {
        std::ostringstream out;
        out << "segment count " << got.size() << " != oracle "
            << want.size();
        return out.str();
    }
    for (std::size_t i = 0; i < got.size(); ++i)
        if (!(got[i] == want[i]))
            return "segment " + std::to_string(i) + ": got " +
                   describeSegment(got[i]) + " want " +
                   describeSegment(want[i]);
    return {};
}

/** True when `prefix` is a byte-prefix of `image`. */
bool
isBytePrefix(const std::string &prefix, const std::string &image)
{
    return prefix.size() <= image.size() &&
           image.compare(0, prefix.size(), prefix) == 0;
}

/** Context for verifying one crash point of one cell. */
struct CrashPointCheck
{
    const CrashCase &c;
    const SimConfig &config;
    Lba addressSpaceEnd = 0;
    const std::string &referenceImage;
    const std::vector<JournalRecord> &referenceRecords;
    std::uint64_t crashPoint = 0;

    std::string
    fail(const std::string &what) const
    {
        std::ostringstream out;
        out << c.label() << " @crash " << crashPoint << ": "
            << what;
        return out.str();
    }

    /**
     * The shared back half of every crash point: the surviving
     * image must be an accounting prefix of the reference, the
     * remount must pass Fsck, and the remounted state must equal
     * the oracle replay of the surviving records.
     */
    void
    verify(SegmentJournal &journal, CrashMatrixResult &result) const
    {
        if (!isBytePrefix(journal.image(), referenceImage)) {
            result.failure = fail(
                "crashed journal image is not a byte-prefix of "
                "the uncrashed reference image");
            return;
        }

        const JournalScan scan = scanJournal(journal.image());
        if (scan.records.size() > referenceRecords.size()) {
            result.failure =
                fail("recovered more epochs than the reference "
                     "run produced");
            return;
        }
        for (std::size_t i = 0; i < scan.records.size(); ++i)
            if (!(scan.records[i] == referenceRecords[i])) {
                result.failure = fail(
                    "recovered record " + std::to_string(i) +
                    " diverges from the reference scan");
                return;
            }

        const std::unique_ptr<TranslationLayer> remounted =
            freshLayer(config, addressSpaceEnd);
        const MountStats stats =
            remounted->mountFromJournal(journal);
        result.epochsApplied += stats.epochsApplied;
        result.tornTails += stats.tornTails;
        result.damagedFrames += stats.damagedFrames;
        result.truncatedEpochs += stats.truncatedEpochs;

        const FsckReport fsck =
            Fsck::check(*remounted, journal);
        result.entriesChecked += fsck.checkedEntries;
        if (!fsck.ok()) {
            result.failure = fail("fsck: " + fsck.toString());
            return;
        }

        if (config.translation != TranslationKind::Conventional) {
            ReferenceExtentMap oracle;
            replayIntoOracle(scan.records, oracle);
            const std::string diff = compareAgainstOracle(
                *remounted, oracle, addressSpaceEnd);
            if (!diff.empty()) {
                result.failure = fail("oracle: " + diff);
                return;
            }
        } else if (!journal.empty()) {
            result.failure = fail(
                "conventional layer produced journal epochs");
            return;
        }

        ++result.crashesRun;
        foldBytes(result.stateDigest, journal.image());
        fold(result.stateDigest, stats.epochsApplied);
        fold(result.stateDigest, stats.tornTails);
        fold(result.stateDigest, stats.truncatedEpochs);
    }
};

/** The trace's first `ops` records (same name, same geometry). */
trace::Trace
tracePrefix(const trace::Trace &trace, std::size_t ops)
{
    trace::Trace prefix(trace.name());
    for (std::size_t i = 0; i < ops && i < trace.size(); ++i)
        prefix.append(trace[i]);
    return prefix;
}

} // namespace

std::string
CrashCase::label() const
{
    std::ostringstream out;
    out << kindName(kind);
    if (policy == gc::CleaningPolicyKind::CostBenefit)
        out << "+cb";
    else if (policy == gc::CleaningPolicyKind::ZoneGranular)
        out << "+zg";
    if (streams > 1)
        out << "+s" << streams;
    if (zones)
        out << "+zones";
    if (shards > 1)
        out << "+sh" << shards;
    if (zonedDevice)
        out << "+dev";
    out << "/" << crashEvery;
    return out.str();
}

trace::Trace
crashTrace(std::size_t ops, std::uint64_t seed, Lba address_space)
{
    trace::Trace trace("crash-matrix");
    // The first record pins addressSpaceEnd() so every prefix
    // replays against byte-identical layer geometry.
    trace.appendWrite(address_space - 8, 8);
    // The rest of the traffic hammers a hot quarter of the space:
    // overwrites keep the live set bounded (the finite log must
    // never overcommit) while the written volume still wraps the
    // log and fills the media cache, so cleaning and merges fire.
    const Lba hot = std::max<Lba>(address_space / 4, 64);
    for (std::size_t i = 1; i < ops; ++i) {
        const std::uint64_t draw =
            mix64(seed ^ (0x7472616365ULL + i));
        const SectorCount count = 1 + (draw >> 8) % 16;
        const Lba lba = draw % (hot - count);
        // Roughly 40% reads: reads exercise recovery only through
        // the cleaning/merge work they interleave with.
        if ((draw & 0xffU) < 102 && i > 1)
            trace.appendRead(lba, count);
        else
            trace.appendWrite(lba, count);
    }
    return trace;
}

SimConfig
crashCaseConfig(const CrashCase &c)
{
    SimConfig config;
    config.translation = c.kind;
    config.replayShards = c.shards;
    if (c.zones)
        // Small zones so a few hundred ops cross several
        // boundaries and the restored crossing count matters.
        config.zones = ZoneConfig{64 * kKiB, 8 * kKiB};
    if (c.kind == TranslationKind::FiniteLogStructured) {
        config.finiteLog.capacityBytes = kMiB;
        config.finiteLog.segmentBytes = 128 * kKiB;
        config.finiteLog.cleanReserveSegments = 2;
        config.finiteLog.cleanTargetSegments = 4;
        config.finiteLog.gc.policy = c.policy;
        config.finiteLog.gc.streams = c.streams;
        // Each extra stream pins another open segment; give the
        // multi-stream cells headroom so the hot-quarter live set
        // never overcommits the log.
        if (c.streams > 1)
            config.finiteLog.capacityBytes = 2 * kMiB;
    }
    if (c.kind == TranslationKind::MediaCache) {
        config.mediaCache.cacheBytes = 256 * kKiB;
        config.mediaCache.mergeThreshold = 0.8;
        config.mediaCache.bandBytes = 64 * kKiB;
    }
    if (c.zonedDevice)
        config.zonedDevice = disk::ZonedDeviceOptions{};
    return config;
}

CrashMatrixResult
runCrashMatrix(const CrashCase &c, const trace::Trace &trace)
{
    CrashMatrixResult result;
    const Lba end = trace.addressSpaceEnd();
    const SimConfig base = crashCaseConfig(c);

    // Uncrashed reference run: its journal image is the ground
    // truth every crashed image must be a prefix of.
    SegmentJournal reference;
    SimConfig ref_config = base;
    ref_config.journal = &reference;
    Simulator(ref_config).run(trace);
    const JournalScan ref_scan = scanJournal(reference.image());
    if (!ref_scan.clean()) {
        result.failure =
            c.label() + ": reference journal did not scan clean";
        return result;
    }

    if (c.zonedDevice) {
        // Device legs: a seeded CrashSchedule kills the device at
        // media write op N; the run must surface DATA_LOSS, and
        // the journal additionally loses a torn tail (the
        // metadata region rides the same power supply).
        for (std::uint64_t n = c.crashEvery;; n += c.crashEvery) {
            SegmentJournal journal;
            SimConfig config = base;
            config.journal = &journal;
            config.zonedDevice->crash = {n, c.seed ^ n};
            const StatusOr<SimResult> run =
                Simulator(config).tryRun(trace);
            const bool crashed = !run.ok();
            if (crashed &&
                run.status().code() != StatusCode::DataLoss) {
                result.failure =
                    c.label() + " @crash " + std::to_string(n) +
                    ": expected DATA_LOSS, got " +
                    run.status().toString();
                return result;
            }
            journal.tearTail(c.seed ^ n);
            const CrashPointCheck check{
                c, base, end, reference.image(),
                ref_scan.records, n};
            check.verify(journal, result);
            if (!result.ok())
                return result;
            // The first crash point past the run's total write
            // count completes normally; the matrix is exhausted.
            if (!crashed)
                break;
        }
        return result;
    }

    // Offline legs: the host dies between trace ops — replay a
    // prefix, then tear the journal's in-flight frame. The final
    // point (the full trace) checks the tear of a complete image.
    for (std::uint64_t n = c.crashEvery;; n += c.crashEvery) {
        const std::uint64_t ops =
            std::min<std::uint64_t>(n, trace.size());
        SegmentJournal journal;
        SimConfig config = base;
        config.journal = &journal;
        Simulator(config).run(tracePrefix(trace, ops));
        journal.tearTail(c.seed ^ ops);
        const CrashPointCheck check{
            c, base, end, reference.image(), ref_scan.records,
            ops};
        check.verify(journal, result);
        if (!result.ok() || ops == trace.size())
            break;
    }
    return result;
}

} // namespace logseek::stl::testing
