#include "reference_finite_log.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace logseek::stl::testing
{

ReferenceFiniteLog::ReferenceFiniteLog(
    Pba identity_end, const FiniteLogConfig &config)
    : config_(config), logStart_(identity_end),
      segmentSectors_(bytesToSectors(config.segmentBytes)),
      writePtr_(identity_end)
{
    panicIf(segmentSectors_ == 0,
            "ReferenceFiniteLog: segment size must be at least one "
            "sector");
    const SectorCount capacity =
        bytesToSectors(config.capacityBytes);
    const std::uint64_t count = capacity / segmentSectors_;
    panicIf(count < 2,
            "ReferenceFiniteLog: need at least two segments");
    panicIf(config.cleanTargetSegments <=
                config.cleanReserveSegments,
            "ReferenceFiniteLog: clean target must exceed the "
            "reserve");
    panicIf(config.cleanTargetSegments >= count,
            "ReferenceFiniteLog: clean target must be below the "
            "segment count");
    segments_.resize(count);
    segments_[0].free = false; // the initial open segment
}

std::uint32_t
ReferenceFiniteLog::segmentOf(Pba pba) const
{
    panicIf(pba < logStart_,
            "ReferenceFiniteLog: sector below the log");
    const auto index =
        static_cast<std::uint32_t>((pba - logStart_) /
                                   segmentSectors_);
    panicIf(index >= segments_.size(),
            "ReferenceFiniteLog: sector beyond the log");
    return index;
}

void
ReferenceFiniteLog::adjustLive(const SectorExtent &range, bool add)
{
    Pba cursor = range.start;
    while (cursor < range.end()) {
        const std::uint32_t seg = segmentOf(cursor);
        const Pba seg_end =
            logStart_ + (seg + 1ULL) * segmentSectors_;
        const SectorCount piece =
            std::min<SectorCount>(range.end(), seg_end) - cursor;
        SegmentState &state = segments_[seg];
        if (add) {
            state.live += piece;
        } else {
            panicIf(state.live < piece,
                    "ReferenceFiniteLog: liveness underflow");
            state.live -= piece;
        }
        cursor += piece;
    }
}

void
ReferenceFiniteLog::removeReverse(const SectorExtent &range)
{
    auto it = reverse_.upper_bound(range.start);
    if (it != reverse_.begin())
        --it;
    while (it != reverse_.end() && it->first < range.end()) {
        const SectorExtent entry{it->first, it->second.second};
        const Lba entry_lba = it->second.first;
        auto next = std::next(it);
        const auto overlap = intersect(entry, range);
        if (overlap) {
            reverse_.erase(it);
            if (entry.start < overlap->start) {
                reverse_.emplace(
                    entry.start,
                    std::make_pair(entry_lba,
                                   overlap->start - entry.start));
            }
            if (overlap->end() < entry.end()) {
                reverse_.emplace(
                    overlap->end(),
                    std::make_pair(entry_lba +
                                       (overlap->end() - entry.start),
                                   entry.end() - overlap->end()));
            }
        }
        it = next;
    }
}

void
ReferenceFiniteLog::openFreeSegment()
{
    for (std::uint32_t i = 0; i < segments_.size(); ++i) {
        if (segments_[i].free) {
            segments_[i].free = false;
            openSegment_ = i;
            writePtr_ = logStart_ + static_cast<Pba>(i) *
                                        segmentSectors_;
            return;
        }
    }
    fatal("reference finite log out of space: no free segment to "
          "open");
}

void
ReferenceFiniteLog::append(Lba lba, SectorCount count,
                           SegmentBuffer &out)
{
    while (count > 0) {
        const Pba open_end =
            logStart_ +
            (static_cast<Pba>(openSegment_) + 1) * segmentSectors_;
        if (writePtr_ == open_end)
            openFreeSegment();
        const Pba open_limit =
            logStart_ +
            (static_cast<Pba>(openSegment_) + 1) * segmentSectors_;
        const SectorCount take =
            std::min<SectorCount>(count, open_limit - writePtr_);

        displacedScratch_.clear();
        map_.mapRange(lba, writePtr_, take, &displacedScratch_);
        for (const auto &dead : displacedScratch_) {
            adjustLive(dead, false);
            removeReverse(dead);
        }
        reverse_.emplace(writePtr_, std::make_pair(lba, take));
        adjustLive({writePtr_, take}, true);

        out.push(Segment{SectorExtent{lba, take}, writePtr_, true});
        writePtr_ += take;
        lba += take;
        count -= take;
    }
}

std::vector<Segment>
ReferenceFiniteLog::placeWrite(const SectorExtent &extent)
{
    panicIf(extent.empty(), "ReferenceFiniteLog: empty write");
    panicIf(extent.end() > logStart_,
            "ReferenceFiniteLog: workload LBA above the log start");
    SegmentBuffer out;
    append(extent.start, extent.count, out);
    return std::move(out).take();
}

std::vector<Segment>
ReferenceFiniteLog::translateRead(const SectorExtent &extent) const
{
    panicIf(extent.empty(), "ReferenceFiniteLog: empty read");
    SegmentBuffer out;
    map_.translateInto(extent, out);
    return std::move(out).take();
}

std::uint32_t
ReferenceFiniteLog::freeSegments() const
{
    std::uint32_t count = 0;
    for (const auto &segment : segments_) {
        if (segment.free)
            ++count;
    }
    return count;
}

std::vector<MediaAccess>
ReferenceFiniteLog::maintenance()
{
    std::vector<MediaAccess> accesses;
    if (freeSegments() > config_.cleanReserveSegments)
        return accesses;
    while (freeSegments() < config_.cleanTargetSegments) {
        std::uint32_t victim = 0;
        SectorCount best = std::numeric_limits<SectorCount>::max();
        bool found = false;
        for (std::uint32_t i = 0; i < segments_.size(); ++i) {
            if (segments_[i].free || i == openSegment_)
                continue;
            if (segments_[i].live < best) {
                best = segments_[i].live;
                victim = i;
                found = true;
            }
        }
        if (!found || best >= segmentSectors_) {
            if (freeSegments() > config_.cleanReserveSegments)
                break;
            fatal("reference finite log overcommitted");
        }

        const Pba victim_start =
            logStart_ + static_cast<Pba>(victim) * segmentSectors_;
        const SectorExtent victim_extent{victim_start,
                                         segmentSectors_};
        std::vector<std::pair<Pba, std::pair<Lba, SectorCount>>>
            live;
        for (auto it = reverse_.lower_bound(victim_start);
             it != reverse_.end() &&
             it->first < victim_extent.end();
             ++it) {
            live.emplace_back(*it);
        }

        for (const auto &[pba, entry] : live) {
            const auto &[lba, count] = entry;
            if (!reverse_.contains(pba))
                continue;
            accesses.push_back(
                {SectorExtent{pba, count}, trace::IoType::Read});
            cleanScratch_.clear();
            append(lba, count, cleanScratch_);
            for (const Segment &segment : cleanScratch_) {
                accesses.push_back({segment.physical(),
                                    trace::IoType::Write});
            }
        }
        panicIf(segments_[victim].live != 0,
                "ReferenceFiniteLog: victim still live after "
                "cleaning");
        segments_[victim].free = true;
        ++cleanings_;
    }
    return accesses;
}

} // namespace logseek::stl::testing
