/**
 * @file
 * The pre-policy-refactor finite log, preserved verbatim as a
 * differential oracle.
 *
 * This is the historical FiniteLogStructuredLayer with its greedy
 * cleaning loop hardcoded inline — exactly the behaviour the
 * pluggable-policy layer must reproduce when configured with the
 * defaults (greedy policy, one placement stream). The journal and
 * telemetry hooks are stripped (they do not affect placement or
 * cleaning traffic); everything that decides *where data goes* and
 * *what cleaning reads/writes* is kept byte-for-byte.
 *
 * GcPolicy differential tests replay randomized workloads through
 * both layers and require identical placements, cleaning accesses,
 * maps and segment states. Do not modernize this file — its value
 * is that it does not change.
 */

#ifndef LOGSEEK_STL_TESTING_REFERENCE_FINITE_LOG_H
#define LOGSEEK_STL_TESTING_REFERENCE_FINITE_LOG_H

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "stl/extent_map.h"
#include "stl/finite_log.h"
#include "stl/translation_layer.h"

namespace logseek::stl::testing
{

/** The historical greedy finite log (no journal, no telemetry). */
class ReferenceFiniteLog
{
  public:
    ReferenceFiniteLog(Pba identity_end,
                       const FiniteLogConfig &config = {});

    /** Place one host write; returns the placed segments. */
    std::vector<Segment> placeWrite(const SectorExtent &extent);

    /** Translate one host read. */
    std::vector<Segment>
    translateRead(const SectorExtent &extent) const;

    /** Greedy cleaning with the historical hysteresis. */
    std::vector<MediaAccess> maintenance();

    std::uint64_t cleanings() const { return cleanings_; }
    std::uint32_t freeSegments() const;
    Pba writePointer() const { return writePtr_; }
    std::uint32_t openSegment() const { return openSegment_; }
    SectorCount segmentLive(std::uint32_t i) const
    {
        return segments_[i].live;
    }
    bool segmentFree(std::uint32_t i) const
    {
        return segments_[i].free;
    }
    const ExtentMap &extentMap() const { return map_; }
    const std::map<Pba, std::pair<Lba, SectorCount>> &
    reverseMap() const
    {
        return reverse_;
    }

  private:
    struct SegmentState
    {
        SectorCount live = 0;
        bool free = true;
    };

    std::uint32_t segmentOf(Pba pba) const;
    void adjustLive(const SectorExtent &range, bool add);
    void removeReverse(const SectorExtent &range);
    void openFreeSegment();
    void append(Lba lba, SectorCount count, SegmentBuffer &out);

    FiniteLogConfig config_;
    Pba logStart_;
    SectorCount segmentSectors_;
    std::vector<SegmentState> segments_;
    ExtentMap map_;
    std::map<Pba, std::pair<Lba, SectorCount>> reverse_;
    std::uint32_t openSegment_ = 0;
    Pba writePtr_;
    std::uint64_t cleanings_ = 0;
    std::vector<SectorExtent> displacedScratch_;
    SegmentBuffer cleanScratch_;
};

} // namespace logseek::stl::testing

#endif // LOGSEEK_STL_TESTING_REFERENCE_FINITE_LOG_H
