/**
 * @file
 * Differential crash-recovery harness shared by the CrashRecovery
 * test suite and the crash_recovery_bench smoke binary.
 *
 * One CrashCase describes a cell of the crash matrix: a translation
 * layer (optionally zoned / sharded), optionally mounted on a
 * ZonedDevice. runCrashMatrix replays a deterministic trace with a
 * SegmentJournal attached, then crashes it at every Nth operation
 * (device power loss when the ZonedDevice leg is on, a journal
 * torn-tail otherwise), remounts a fresh layer from the surviving
 * journal image and verifies, for every crash point:
 *
 *  - the crashed run's journal image is a byte-prefix of the
 *    uncrashed reference run's image (accounting for the surviving
 *    prefix is byte-identical);
 *  - the torn image scans to a record prefix of the reference scan
 *    (recovery is a prefix-consistent subset, never invented
 *    state);
 *  - the remounted layer passes Fsck against the torn journal;
 *  - the remounted translation of the whole logical space equals
 *    an independent oracle (ReferenceExtentMap) replay of the same
 *    record prefix.
 *
 * Everything is seeded: equal seeds produce equal torn images,
 * digests and mount stats across --jobs and checkpoint/resume.
 */

#ifndef LOGSEEK_STL_TESTING_CRASH_HARNESS_H
#define LOGSEEK_STL_TESTING_CRASH_HARNESS_H

#include <cstdint>
#include <string>

#include "stl/simulator.h"
#include "trace/trace.h"

namespace logseek::stl::testing
{

/** One cell of the crash-recovery matrix. */
struct CrashCase
{
    TranslationKind kind = TranslationKind::LogStructured;

    /** Guarded zone structure on the log frontier (LS/sharded). */
    bool zones = false;

    /** Replay shard count; > 1 swaps LS for ShardedTranslation. */
    int shards = 1;

    /** Mount the replay on a ZonedDevice and crash it with a
     *  CrashSchedule instead of tearing the journal offline. */
    bool zonedDevice = false;

    /** Crash stride: a crash is injected at every multiple of this
     *  (trace ops offline, media write ops on the device leg). */
    std::uint64_t crashEvery = 7;

    /** Seed of the torn-tail draws (mixed with the crash point). */
    std::uint64_t seed = 0xc4a5471ULL;

    /** Cleaning policy of the finite-log cell. */
    gc::CleaningPolicyKind policy = gc::CleaningPolicyKind::Greedy;

    /** Placement streams of the finite-log cell. */
    std::uint32_t streams = 1;

    /** Human-readable cell label, e.g. "FiniteLS+cb+s2+dev/7". */
    std::string label() const;
};

/** Aggregate outcome of one matrix cell (all its crash points). */
struct CrashMatrixResult
{
    /** Crash points injected and recovered. */
    std::uint64_t crashesRun = 0;

    /** Torn tails the recovery scans discriminated. */
    std::uint64_t tornTails = 0;

    /** Frames dropped for a bad CRC or length (0 under this
     *  harness: power loss tears, it does not corrupt). */
    std::uint64_t damagedFrames = 0;

    /** Intact frames discarded beyond the last consistent epoch. */
    std::uint64_t truncatedEpochs = 0;

    /** Epochs replayed across all mounts. */
    std::uint64_t epochsApplied = 0;

    /** Map entries the Fsck passes compared. */
    std::uint64_t entriesChecked = 0;

    /** FNV-1a digest over every torn journal image and mount
     *  tally, in crash-point order. Equal seeds must produce equal
     *  digests — the determinism probe the tests compare across
     *  repeat runs and shard counts. */
    std::uint64_t stateDigest = 0;

    /** First verification failure; empty when every crash point
     *  recovered consistently. */
    std::string failure;

    bool ok() const { return failure.empty(); }
};

/**
 * Deterministic mixed read/write trace for the crash matrix. The
 * first record touches the top of the address space, so every
 * prefix of the trace has the same addressSpaceEnd() — crashed
 * prefix replays construct byte-identical layer geometry.
 */
trace::Trace crashTrace(std::size_t ops, std::uint64_t seed,
                        Lba address_space);

/**
 * The SimConfig a CrashCase replays under (journal not yet
 * attached). Geometry constants are sized small so cleaning,
 * merges and zone crossings all fire within a few hundred ops.
 */
SimConfig crashCaseConfig(const CrashCase &c);

/** Run every crash point of one cell; see the file comment. */
CrashMatrixResult runCrashMatrix(const CrashCase &c,
                                 const trace::Trace &trace);

} // namespace logseek::stl::testing

#endif // LOGSEEK_STL_TESTING_CRASH_HARNESS_H
