#include "reference_extent_map.h"

#include "util/logging.h"

namespace logseek::stl::testing
{

void
ReferenceExtentMap::splitAt(Lba sector)
{
    auto it = entries_.upper_bound(sector);
    if (it == entries_.begin())
        return;
    --it;
    const Lba entry_lba = it->first;
    const Entry entry = it->second;
    if (entry_lba >= sector || entry_lba + entry.count <= sector)
        return;

    const SectorCount left_count = sector - entry_lba;
    it->second.count = left_count;
    entries_.emplace(sector, Entry{entry.pba + left_count,
                                   entry.count - left_count});
}

void
ReferenceExtentMap::eraseRange(Lba lo, Lba hi,
                               std::vector<SectorExtent> *displaced)
{
    auto it = entries_.lower_bound(lo);
    while (it != entries_.end() && it->first < hi) {
        panicIf(it->first + it->second.count > hi,
                "ReferenceExtentMap::eraseRange: entry crosses "
                "range end");
        if (displaced != nullptr)
            displaced->push_back(
                SectorExtent{it->second.pba, it->second.count});
        mappedSectors_ -= it->second.count;
        it = entries_.erase(it);
    }
}

std::map<Lba, ReferenceExtentMap::Entry>::iterator
ReferenceExtentMap::tryMergeWithPrev(
    std::map<Lba, Entry>::iterator it)
{
    if (it == entries_.begin() || it == entries_.end())
        return it;
    auto prev = std::prev(it);
    const bool lba_adjacent =
        prev->first + prev->second.count == it->first;
    const bool pba_adjacent =
        prev->second.pba + prev->second.count == it->second.pba;
    if (!lba_adjacent || !pba_adjacent)
        return it;
    prev->second.count += it->second.count;
    entries_.erase(it);
    return prev;
}

void
ReferenceExtentMap::mapRange(Lba lba, Pba pba, SectorCount count,
                             std::vector<SectorExtent> *displaced)
{
    panicIf(count == 0, "ReferenceExtentMap::mapRange: empty range");
    const Lba end = lba + count;

    // Carve out the target range, then drop whatever was inside it.
    splitAt(lba);
    splitAt(end);
    eraseRange(lba, end, displaced);

    auto [it, inserted] = entries_.emplace(lba, Entry{pba, count});
    panicIf(!inserted,
            "ReferenceExtentMap::mapRange: range not cleared");
    mappedSectors_ += count;

    // Coalesce with both neighbors where logically and physically
    // contiguous.
    it = tryMergeWithPrev(it);
    auto next = std::next(it);
    if (next != entries_.end())
        tryMergeWithPrev(next);
}

std::vector<Segment>
ReferenceExtentMap::translate(const SectorExtent &extent) const
{
    std::vector<Segment> segments;
    if (extent.empty())
        return segments;

    Lba cursor = extent.start;
    const Lba end = extent.end();

    auto it = entries_.upper_bound(cursor);
    if (it != entries_.begin())
        --it;

    auto emit_hole = [&](Lba from, Lba to) {
        segments.push_back(Segment{SectorExtent{from, to - from},
                                   from, false});
    };

    for (; it != entries_.end() && it->first < end; ++it) {
        const Lba entry_lba = it->first;
        const Entry &entry = it->second;
        const Lba entry_end = entry_lba + entry.count;
        if (entry_end <= cursor)
            continue;
        if (entry_lba > cursor)
            emit_hole(cursor, entry_lba);
        const Lba seg_lba = std::max(cursor, entry_lba);
        const Lba seg_end = std::min(end, entry_end);
        segments.push_back(
            Segment{SectorExtent{seg_lba, seg_end - seg_lba},
                    entry.pba + (seg_lba - entry_lba), true});
        cursor = seg_end;
        if (cursor >= end)
            break;
    }
    if (cursor < end)
        emit_hole(cursor, end);
    return segments;
}

std::size_t
ReferenceExtentMap::fragmentCount(const SectorExtent &extent) const
{
    return translate(extent).size();
}

} // namespace logseek::stl::testing
