/**
 * @file
 * Shard-partitioned log-structured translation.
 *
 * Semantically this is LogStructuredLayer — same write-frontier
 * placement (one shared LogFrontier, so placed segments are
 * byte-identical), same identity holes, same name — but the extent
 * map is partitioned into N independent per-region ExtentMaps over
 * equal LBA stripes of [0, logStart). Each map only ever sees
 * operations clipped to its stripe, which keeps every tree smaller
 * (shorter descents, hotter cursors) and gives each region an
 * isolated structure that later stages can consult without touching
 * its neighbors.
 *
 * Two documented deviations from the single-map layer, both healed
 * by the engine's physical-contiguity merge before any accounting:
 *
 *  - Scalar/batch translate output may be split at shard boundaries
 *    (a run or identity hole crossing a stripe edge comes back as
 *    two segments). The pieces are physically adjacent by
 *    construction, so mergePhysicallyContiguous(InPlace) restores
 *    the exact single-map segments.
 *  - Write placements are pushed unsplit (only zone-split), exactly
 *    as LogStructuredLayer pushes them; only the internal mapRange
 *    is clipped per stripe.
 *
 * staticFragmentCount() compensates for boundary splits explicitly:
 * it sums per-shard entry counts and subtracts one for every stripe
 * boundary where the two sides would have coalesced into a single
 * entry (both mapped and physically contiguous — the single map's
 * coalescing predicate).
 */

#ifndef LOGSEEK_STL_SHARDED_TRANSLATION_H
#define LOGSEEK_STL_SHARDED_TRANSLATION_H

#include <cstddef>
#include <optional>
#include <vector>

#include "stl/extent_map.h"
#include "stl/log_structured.h"
#include "stl/translation_layer.h"

namespace logseek::stl
{

/** LBA-striped variant of the log-structured layer. */
class ShardedTranslation : public TranslationLayer
{
  public:
    /**
     * @param initial_frontier First physical sector of the log (and
     *        one past the highest workload LBA); the stripes
     *        partition [0, initial_frontier).
     * @param shards Number of LBA stripes; must be >= 1.
     * @param zones Optional zone/guard structure, laid out exactly
     *        as in LogStructuredLayer.
     */
    ShardedTranslation(Pba initial_frontier, std::size_t shards,
                       std::optional<ZoneConfig> zones = {});

    void translateReadInto(const SectorExtent &extent,
                           SegmentBuffer &out) const override;

    void placeWriteInto(const SectorExtent &extent,
                        SegmentBuffer &out) override;

    void translateReadBatchInto(std::span<const SectorExtent> extents,
                                SegmentBufferBatch &out)
        const override;

    void placeWriteBatchInto(std::span<const SectorExtent> extents,
                             SegmentBufferBatch &out) override;

    std::size_t staticFragmentCount() const override;

    /** Reports the log-structured name: sharding is an execution
     *  strategy, not a different translation model. */
    std::string name() const override { return "log-structured"; }

    void attachJournal(SegmentJournal *journal) override
    {
        journal_ = journal;
    }

    /** Journal records carry entries unsplit at stripe boundaries
     *  (zone-split only, as placed), so the image is byte-identical
     *  to LogStructuredLayer's for the same op stream — the basis
     *  of the recovery determinism check across replayShards. */
    MountStats
    mountFromJournal(const SegmentJournal &journal) override;

    /** Defrag support, identical to LogStructuredLayer. */
    std::vector<Segment>
    relocate(const SectorExtent &extent)
    {
        return placeWrite(extent);
    }

    /** Allocation-free relocate for the replay hot path. */
    void
    relocateInto(const SectorExtent &extent, SegmentBuffer &out)
    {
        placeWriteInto(extent, out);
    }

    /** Physical sector the next write will start at. */
    Pba writeFrontier() const { return frontier_.pos(); }

    /** Sector where the log began (initial frontier). */
    Pba logStart() const { return logStart_; }

    /** Number of zone boundaries the frontier has crossed. */
    std::uint64_t zoneCrossings() const
    {
        return frontier_.crossings();
    }

    /** Number of LBA stripes. */
    std::size_t shardCount() const { return maps_.size(); }

    /** Map entries in stripe `shard` (tests/diagnostics). */
    std::size_t
    shardEntryCount(std::size_t shard) const
    {
        return maps_[shard].entryCount();
    }

    /** Stripe `shard`'s map (read-only; Fsck and diagnostics). */
    const ExtentMap &
    shardMap(std::size_t shard) const
    {
        return maps_[shard];
    }

    /** LBA width of every stripe but the (clamping) last. */
    SectorCount shardWidth() const { return shardWidth_; }

    /** One past the last LBA routed to stripe `shard`. */
    Lba shardEnd(std::size_t shard) const;

  private:
    /** Stripe owning `lba` (LBAs at or above logStart clamp to the
     *  last stripe; they are unmapped there, so reads of them still
     *  produce the identity holes the single map would). */
    std::size_t shardOf(Lba lba) const;

    /** mapRange clipped per stripe; placement stays contiguous. */
    void mapSharded(Lba lba, Pba placed, SectorCount count);

    /** translateAppend split at stripe boundaries. */
    void translateAppendSharded(const SectorExtent &extent,
                                SegmentBuffer &out) const;

    /** Frontier placement of one write (no clear), as in
     *  LogStructuredLayer::appendWrite. */
    void appendWrite(const SectorExtent &extent, SegmentBuffer &out);

    Pba logStart_;
    SectorCount shardWidth_;
    std::vector<ExtentMap> maps_;
    LogFrontier frontier_;

    /** Durable metadata journal; null = volatile (the default). */
    SegmentJournal *journal_ = nullptr;

    /** Reusable per-op entry scratch for journal records. */
    std::vector<JournalEntry> journalScratch_;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_SHARDED_TRANSLATION_H
