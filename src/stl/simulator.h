/**
 * @file
 * Trace-driven seek simulator for block translation layers.
 *
 * The Simulator replays a block trace against a translation layer
 * (conventional or log-structured) under the paper's infinite-disk
 * model, counting read and write seeks per §II, optionally with any
 * combination of the three seek-reduction mechanisms (§IV). One
 * IoEvent per logical request is delivered to registered observers,
 * which is how every analysis/figure is computed without touching
 * the engine.
 */

#ifndef LOGSEEK_STL_SIMULATOR_H
#define LOGSEEK_STL_SIMULATOR_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "disk/head.h"
#include "disk/seek_time.h"
#include "disk/zoned_device.h"
#include "stl/defrag.h"
#include "stl/finite_log.h"
#include "stl/log_structured.h"
#include "stl/media_cache.h"
#include "stl/prefetch.h"
#include "stl/selective_cache.h"
#include "stl/translation_layer.h"
#include "trace/input.h"
#include "trace/trace.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace logseek::stl
{

/**
 * Fan-out primitive for intra-replay sharding: invoke `fn(k)` for
 * every k in [0, n), possibly on worker threads, and return only
 * once all n calls have finished. An empty executor means "run
 * inline on the calling thread". Defined here (not in sweep/) so
 * the replay core stays free of thread-pool dependencies; see
 * sweep::makeShardExecutor for the TaskPool-backed implementation.
 */
using ShardExecutor =
    std::function<void(std::size_t,
                       const std::function<void(std::size_t)> &)>;

/** Which translation layer the simulator instantiates. */
enum class TranslationKind
{
    Conventional,
    LogStructured,
    FiniteLogStructured,
    MediaCache,
};

/** Full simulator configuration. */
struct SimConfig
{
    TranslationKind translation = TranslationKind::LogStructured;

    /** Opportunistic defragmentation (§IV-A); off by default. */
    std::optional<DefragConfig> defrag;

    /** Look-ahead-behind prefetching (§IV-B); off by default. */
    std::optional<PrefetchConfig> prefetch;

    /** Selective caching (§IV-C); off by default. */
    std::optional<SelectiveCacheConfig> cache;

    /**
     * Media-cache layer parameters; only used when translation is
     * TranslationKind::MediaCache.
     */
    MediaCacheConfig mediaCache;

    /**
     * Optional zone/guard structure for the log-structured layer;
     * crossing a zone boundary makes the next log write skip the
     * guard band (one short seek per crossing).
     */
    std::optional<ZoneConfig> zones;

    /**
     * Finite-log parameters; only used when translation is
     * TranslationKind::FiniteLogStructured.
     */
    FiniteLogConfig finiteLog;

    /** Seek-time model parameters (time reporting only). */
    disk::SeekTimeParams seekTime;

    /**
     * Zoned-device realism layer; off by default. When set, every
     * media access is mirrored through a ZonedDevice: writes
     * advance real per-zone write pointers under the selected
     * translation layer's zone policy, and reads traverse the
     * seeded media-fault model (see docs/zoned_device.md).
     */
    std::optional<disk::ZonedDeviceOptions> zonedDevice;

    /**
     * Number of shards for intra-replay parallel seek
     * classification (see docs/parallel_replay.md). Sharding is an
     * execution strategy, not a modeling choice: the SimResult is
     * byte-identical at every shard count, so this deliberately
     * does not appear in label(). Must be in [1, 256].
     */
    int replayShards = 1;

    /** Records per columnar replay batch; must be in [1, 65536]. */
    int replayBatchSize = 256;

    /**
     * Executor shard classification fans out through when
     * replayShards > 1. Empty (the default) runs shards inline on
     * the calling thread — still byte-identical, just serial.
     */
    ShardExecutor shardExecutor;

    /**
     * Durable translation-metadata journal; off (null) by default.
     * When set, the translation layer records every state mutation
     * as one epoch frame into this caller-owned journal, which
     * must outlive the run — it is the piece of state that
     * survives a crash, so the crash-recovery harness keeps it
     * while the engine (and its layer) are torn down and remounts
     * a fresh layer from it. Not owned; does not affect seek
     * accounting or label().
     */
    SegmentJournal *journal = nullptr;

    /**
     * Run the Fsck invariant verifier after the replay (requires
     * `journal`): extent-map ↔ journal agreement, write-pointer
     * alignment, shard-stripe consistency. Any violation is fatal
     * — this is the --paranoid belt-and-suspenders mode, off by
     * default. Does not affect results or label().
     */
    bool paranoidFsck = false;

    /** Short label of the configuration, e.g. "LS+cache". */
    std::string label() const;
};

/** One logical request as the simulator served it. */
struct IoEvent
{
    /** Index of the request in the trace. */
    std::uint64_t opIndex = 0;

    /** The original trace record. */
    trace::IoRecord record;

    /**
     * Physical segments the request translated to (after merging
     * physically contiguous runs), in LBA order; for writes, the
     * single placed segment. Cache/prefetch hits do not remove
     * entries here.
     */
    std::vector<Segment> segments;

    /** Media seeks this request incurred (including any defrag
     *  rewrite), in occurrence order; only actual seeks appear. */
    std::vector<disk::SeekInfo> seeks;

    /** Fragments served from the selective cache. */
    std::uint32_t cacheHits = 0;

    /** Fragments served from the drive prefetch buffer. */
    std::uint32_t prefetchHits = 0;

    /** True if this read triggered an opportunistic rewrite. */
    bool defragRewrite = false;

    /** Segments placed by the defrag rewrite (empty otherwise). */
    std::vector<Segment> defragSegments;

    /** Cleaning (merge) seeks charged to this request. */
    std::uint32_t cleaningSeeks = 0;

    /** Bytes moved to/from the media for this request. */
    std::uint64_t mediaBytes = 0;

    /** Device read-recovery retries charged to this request. */
    std::uint32_t deviceRetries = 0;

    /** Device sectors this request lost (unrecovered reads or
     *  refused writes). */
    std::uint32_t deviceFailedSectors = 0;

    /**
     * Reset to a fresh event while keeping the vectors' capacity,
     * so one IoEvent reused across a replay loop stops allocating
     * once warmed up.
     */
    void
    reset()
    {
        opIndex = 0;
        record = {};
        segments.clear();
        seeks.clear();
        cacheHits = 0;
        prefetchHits = 0;
        defragRewrite = false;
        defragSegments.clear();
        cleaningSeeks = 0;
        mediaBytes = 0;
        deviceRetries = 0;
        deviceFailedSectors = 0;
    }

    /** Exact comparison, used by the sharded/serial differential
     *  tests; seeks compare bit-wise including distances. */
    bool operator==(const IoEvent &) const = default;

    /** Dynamic fragmentation of a read (1 for writes). */
    std::size_t fragments() const { return segments.size(); }

    /** True for a read resolved to two or more physical runs. */
    bool
    isFragmentedRead() const
    {
        return record.isRead() && segments.size() >= 2;
    }
};

/** Aggregate results of one simulation run. */
struct SimResult
{
    std::string workload;
    std::string configLabel;

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readSeeks = 0;
    std::uint64_t writeSeeks = 0;

    std::uint64_t fragmentedReads = 0;
    std::uint64_t readFragments = 0;

    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t prefetchHits = 0;

    std::uint64_t defragRewrites = 0;
    std::uint64_t defragBytes = 0;

    std::uint64_t mediaReadBytes = 0;
    std::uint64_t mediaWriteBytes = 0;

    /** Bytes the host asked to write (before any amplification). */
    std::uint64_t hostWriteBytes = 0;

    /** Cleaning traffic and seeks (media-cache merges or finite-
     *  log garbage collection). cleaningMerges counts merge passes
     *  or reclaimed segments respectively. */
    std::uint64_t cleaningReadBytes = 0;
    std::uint64_t cleaningWriteBytes = 0;
    std::uint64_t cleaningSeeks = 0;
    std::uint64_t cleaningMerges = 0;

    /** Estimated positioning time over all seeks (seconds). */
    double seekTimeSec = 0.0;

    /** Final static fragmentation of the translation layer. */
    std::size_t staticFragments = 0;

    /** Zoned-device counters; all zero when the device layer is
     *  off (SimConfig::zonedDevice unset). */
    std::uint64_t deviceReadRetries = 0;
    std::uint64_t deviceRecoveredSectors = 0;
    std::uint64_t deviceFailedReadSectors = 0;
    std::uint64_t deviceDegradedReads = 0;
    std::uint64_t deviceFailedWriteSectors = 0;
    std::uint64_t deviceZoneResets = 0;
    std::uint64_t deviceWpViolations = 0;
    std::uint64_t deviceOutOfPolicyWrites = 0;
    std::uint64_t deviceGrownDefects = 0;
    std::uint64_t deviceReadOnlyZones = 0;
    std::uint64_t deviceOfflineZones = 0;

    /** Read-error-log entries the device dropped because the
     *  configured bound (ZonedDeviceOptions::errorLogCap) was
     *  reached; 0 when the device layer is off. */
    std::uint64_t deviceErrorLogDropped = 0;

    /** Live bytes GC moved out of victim segments (finite log
     *  only); gcVictimSpanBytes is the total capacity the victims
     *  spanned, so live/span is the mean victim utilization. */
    std::uint64_t gcVictimLiveBytes = 0;
    std::uint64_t gcVictimSpanBytes = 0;

    /**
     * Exact (bit-wise, including seekTimeSec) comparison. The
     * sharded replay core is contractually byte-identical to the
     * serial one, so tests compare results with == rather than
     * field-by-field tolerances.
     */
    bool operator==(const SimResult &) const = default;

    /** True when the device lost any sectors this run. */
    bool
    deviceDegraded() const
    {
        return deviceFailedReadSectors > 0 ||
               deviceFailedWriteSectors > 0;
    }

    /** Host-visible seeks (the paper's SAF numerator). */
    std::uint64_t totalSeeks() const { return readSeeks + writeSeeks; }

    /** Seeks including background cleaning work. */
    std::uint64_t
    totalSeeksWithCleaning() const
    {
        return totalSeeks() + cleaningSeeks;
    }

    /**
     * Write amplification factor: bytes written to the media
     * (host + cleaning rewrites) per host-written byte; 1.0 when
     * there were no writes.
     */
    double writeAmplification() const;
};

/** Observer interface; analyses implement this. */
class SimObserver
{
  public:
    virtual ~SimObserver() = default;

    /** Called once per logical request, in trace order. */
    virtual void onEvent(const IoEvent &event) = 0;
};

/**
 * The trace-replay engine. A Simulator is configured once and can
 * run many traces; each run() uses fresh translation/mechanism
 * state sized to that trace.
 */
class Simulator
{
  public:
    explicit Simulator(const SimConfig &config = {});

    /**
     * Register an observer for subsequent runs. Observers are not
     * owned and must outlive the simulator's run() calls.
     */
    void addObserver(SimObserver *observer);

    /** Remove all registered observers. */
    void clearObservers();

    /**
     * Replay a trace and return aggregate results.
     * @throws FatalError / PanicError on a non-replayable trace or
     *         configuration (thin wrapper around tryRun).
     */
    SimResult run(const trace::Trace &trace);

    /** As run(const Trace &), replaying any record stream (mmap'd
     *  LSKC view, streaming generator, ...). Resets the input. */
    SimResult run(trace::TraceInput &input);

    /**
     * Typed-error replay entry point: validates the trace up front
     * (InvalidArgument on a malformed record), then replays it,
     * converting any escaped FatalError into InvalidArgument and
     * any PanicError into Internal so one bad trace cannot take
     * down a batch sweep. A fired cancellation token surfaces as
     * Cancelled or DeadlineExceeded; the replay unwinds at the next
     * per-batch check and no partial result is returned.
     */
    StatusOr<SimResult> tryRun(const trace::Trace &trace,
                               CancelToken cancel = {});

    /**
     * As tryRun(const Trace &), for any record stream. The
     * validation pass and the replay each reset the input, so it
     * is pulled twice end to end; for identical record sequences
     * the SimResult is byte-identical to the in-RAM overload.
     */
    StatusOr<SimResult> tryRun(trace::TraceInput &input,
                               CancelToken cancel = {});

    /**
     * Check that a trace is replayable: every record has a
     * non-empty extent whose sector range does not overflow.
     * Returns InvalidArgument naming the first offending record.
     */
    static Status validateTrace(const trace::Trace &trace);

    /** Streaming validateTrace over one full pass of `input`
     *  (resets it; leaves the cursor at the end). */
    static Status validateInput(trace::TraceInput &input);

    const SimConfig &config() const { return config_; }

  private:
    /** Builds a per-run ReplayEngine and replays the stream. */
    SimResult replay(trace::TraceInput &input,
                     const CancelToken &cancel);

    SimConfig config_;
    std::vector<SimObserver *> observers_;
};

/**
 * Convenience: run the same trace under the conventional baseline
 * and under a log-structured configuration, returning
 * (baseline, logStructured). The baseline ignores cfg's mechanisms.
 * The optional observers are registered on both runs (e.g. a
 * paranoid ValidatingObserver in integration tests).
 */
std::pair<SimResult, SimResult>
runWithBaseline(const trace::Trace &trace, const SimConfig &ls_config,
                const std::vector<SimObserver *> &observers = {});

/**
 * Seek amplification factor: total seeks of ls divided by total
 * seeks of the baseline (paper §II). Returns std::nullopt when the
 * baseline had no seeks — the ratio is undefined there, and
 * reporting it as 0 would read as "no amplification" when the
 * comparison is actually meaningless.
 */
std::optional<double> seekAmplification(const SimResult &baseline,
                                        const SimResult &ls);

} // namespace logseek::stl

#endif // LOGSEEK_STL_SIMULATOR_H
