/**
 * @file
 * Per-run trace-replay engine.
 *
 * A ReplayEngine is built fresh for one (trace, config) run: it
 * instantiates the translation layer, assembles the read-path
 * pipeline (selective cache → prefetch buffer → media access →
 * defrag trigger), and routes every byte and seek through a single
 * Accounting sink. The Simulator facade constructs one engine per
 * run; tests and future backends can drive the engine directly.
 */

#ifndef LOGSEEK_STL_REPLAY_ENGINE_H
#define LOGSEEK_STL_REPLAY_ENGINE_H

#include <functional>
#include <memory>
#include <vector>

#include "disk/zoned_device.h"
#include "stl/accounting.h"
#include "stl/read_stage.h"
#include "stl/simulator.h"
#include "stl/translation_layer.h"
#include "trace/trace.h"
#include "util/cancellation.h"

namespace logseek::stl
{

/**
 * Replays one trace under one configuration. The engine owns all
 * per-run state (layer, mechanisms, head position, result), so an
 * engine is used for exactly one run() and is never shared between
 * threads.
 */
class ReplayEngine
{
  public:
    /**
     * @param config Simulation configuration (copied).
     * @param trace The trace to replay; must outlive the engine.
     * @param observers Observers notified once per logical request,
     *        in trace order; not owned.
     * @param cancel Cooperative cancellation token, polled once per
     *        record batch; default never fires.
     */
    ReplayEngine(const SimConfig &config, const trace::Trace &trace,
                 const std::vector<SimObserver *> &observers,
                 CancelToken cancel = {});

    ~ReplayEngine();

    ReplayEngine(const ReplayEngine &) = delete;
    ReplayEngine &operator=(const ReplayEngine &) = delete;

    /**
     * Replay the whole trace and return the aggregate result.
     * @throws StatusError (Cancelled or DeadlineExceeded) when the
     *         cancellation token fires mid-replay.
     */
    SimResult run();

    /** Records between cancellation checks in run(). */
    static constexpr std::uint64_t kCancelCheckInterval = 64;

    /** The assembled read path (introspection for tests). */
    const ReadPipeline &readPipeline() const { return pipeline_; }

  private:
    /** Serve one write request. */
    void handleWrite(const trace::IoRecord &record, IoEvent &event);

    /** Serve one read request through the pipeline. */
    void handleRead(const trace::IoRecord &record, IoEvent &event);

    /** Play the layer's owed background cleaning accesses. */
    void runMaintenance(IoEvent &event);

    /** Emit one aggregate trace span per read stage (end of run). */
    void emitStageSpans();

    SimConfig config_;
    const trace::Trace &trace_;
    std::vector<SimObserver *> observers_;
    CancelToken cancel_;

    SimResult result_;
    Accounting accounting_;
    std::unique_ptr<TranslationLayer> layer_;

    /** Zoned-device realism layer; null unless configured. Every
     *  media access Accounting sees is mirrored through it. */
    std::unique_ptr<disk::ZonedDevice> device_;

    ReadPipeline pipeline_;

    /** End-to-end latency of one logical read (telemetry). */
    telemetry::LatencyHistogram *readLatency_ = nullptr;

    /** Latency of the translate step alone (telemetry). */
    telemetry::LatencyHistogram *translateLatency_ = nullptr;

    /** Reusable per-request scratch for layer results; clear()
     *  keeps capacity, so steady-state requests do not allocate. */
    SegmentBuffer segmentScratch_;

    /** Samples the layer's merge/cleaning counter; may be empty. */
    std::function<std::uint64_t()> cleaningMerges_;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_REPLAY_ENGINE_H
