/**
 * @file
 * Per-run trace-replay engine (batch-first).
 *
 * A ReplayEngine is built fresh for one (trace, config) run: it
 * instantiates the translation layer, assembles the read-path
 * pipeline (selective cache → prefetch buffer → media access →
 * defrag trigger), and routes every byte and seek through a single
 * Accounting sink. The Simulator facade constructs one engine per
 * run; tests and future backends can drive the engine directly.
 *
 * The engine replays the trace in columnar batches
 * (SimConfig::replayBatchSize records, default 256): each batch is
 * loaded into an IoEventBatch, split into same-type runs, and each
 * run is translated in small mini-chunks, one batched virtual call
 * per chunk (write runs of maintenance-free layers are placed with
 * a single call). Translation-mutating events inside a read run (a
 * defrag rewrite, cleaning) invalidate the pre-translated rest of
 * the current chunk, which falls back to record-at-a-time
 * translation; the next chunk resumes batching — so batching is an
 * execution strategy only: the SimResult is byte-identical to
 * record-at-a-time replay. With SimConfig::replayShards > 1 the
 * Accounting sink additionally defers seek classification and
 * resolves it per batch in shard-parallel chunks (see
 * docs/parallel_replay.md), again byte-identically.
 */

#ifndef LOGSEEK_STL_REPLAY_ENGINE_H
#define LOGSEEK_STL_REPLAY_ENGINE_H

#include <functional>
#include <memory>
#include <vector>

#include "disk/zoned_device.h"
#include "stl/accounting.h"
#include "stl/read_stage.h"
#include "stl/simulator.h"
#include "stl/translation_layer.h"
#include "trace/input.h"
#include "trace/trace.h"
#include "util/cancellation.h"

namespace logseek::stl
{

/**
 * Replays one trace under one configuration. The engine owns all
 * per-run state (layer, mechanisms, head position, result), so an
 * engine is used for exactly one run() and is never shared between
 * threads.
 */
class ReplayEngine
{
  public:
    /**
     * @param config Simulation configuration (copied).
     * @param input The record stream to replay; must outlive the
     *        engine. run() resets it, so the cursor position on
     *        entry does not matter. The engine pulls batches
     *        through TraceInput::next(), so it is indifferent to
     *        whether the records live in RAM (TraceRef), in an
     *        mmap'd LSKC file (zero-copy LskcView) or are
     *        synthesized on the fly (workloads::WorkloadStream) —
     *        the SimResult is byte-identical for identical record
     *        streams.
     * @param observers Observers notified once per logical request,
     *        in trace order (delivered at the end of the request's
     *        batch, once the event is fully resolved); not owned.
     * @param cancel Cooperative cancellation token, polled at every
     *        batch boundary and every kCancelCheckInterval records
     *        inside the serving loops; default never fires.
     */
    ReplayEngine(const SimConfig &config, trace::TraceInput &input,
                 const std::vector<SimObserver *> &observers,
                 CancelToken cancel = {});

    /** Convenience overload replaying an in-RAM trace (wraps it in
     *  an engine-owned TraceRef). */
    ReplayEngine(const SimConfig &config, const trace::Trace &trace,
                 const std::vector<SimObserver *> &observers,
                 CancelToken cancel = {});

    ~ReplayEngine();

    ReplayEngine(const ReplayEngine &) = delete;
    ReplayEngine &operator=(const ReplayEngine &) = delete;

    /**
     * Replay the whole trace and return the aggregate result.
     * @throws StatusError (Cancelled or DeadlineExceeded) when the
     *         cancellation token fires mid-replay.
     */
    SimResult run();

    /** Records between cancellation checks in run(). */
    static constexpr std::uint64_t kCancelCheckInterval = 64;

    /** The assembled read path (introspection for tests). */
    const ReadPipeline &readPipeline() const { return pipeline_; }

  private:
    /** Delegation helper: the Trace overload routes through this
     *  to keep the owned TraceRef alive for the engine's life. */
    ReplayEngine(const SimConfig &config,
                 std::unique_ptr<trace::TraceInput> owned,
                 const std::vector<SimObserver *> &observers,
                 CancelToken cancel);

    /**
     * Serve batch records [begin, end) — one same-type read run.
     * `base` is the trace-wide index of batch record 0.
     * `fast_media_only` short-circuits the pipeline when it is
     * exactly the media-access stage and telemetry is off.
     */
    void serveReadRun(std::uint64_t base, std::size_t begin,
                      std::size_t end, bool fast_media_only);

    /** Serve batch records [begin, end) — one write run. */
    void serveWriteRun(std::uint64_t base, std::size_t begin,
                       std::size_t end);

    /**
     * Batch-translate read extents [begin, end) of the current
     * batch into readBatch_ (serveReadRun calls this one
     * mini-chunk at a time). When `sampled`, the elapsed time is
     * recorded amortized — one equal sample per record — so the
     * translate-latency count stays equal to result.reads. The
     * scalar fallback after a mid-chunk mutation records no extra
     * samples for the same reason.
     */
    void translateRun(std::size_t begin, std::size_t end,
                      bool sampled);

    /**
     * Play the layer's owed background cleaning accesses; returns
     * true when any were owed (i.e. translation state changed).
     * Skipped entirely for layers with hasMaintenance() == false.
     */
    bool runMaintenance(IoEvent &event);

    /** Throw the cancellation status for this replay. */
    [[noreturn]] void throwCancelled();

    /** Emit one aggregate trace span per read stage (end of run). */
    void emitStageSpans();

    SimConfig config_;

    /** Set only by the Trace convenience ctor: the TraceRef the
     *  engine itself owns; input_ points at it then. */
    std::unique_ptr<trace::TraceInput> ownedInput_;

    /** The record stream being replayed; never null. */
    trace::TraceInput *input_;

    std::vector<SimObserver *> observers_;
    CancelToken cancel_;

    SimResult result_;
    Accounting accounting_;
    std::unique_ptr<TranslationLayer> layer_;

    /** Zoned-device realism layer; null unless configured. Every
     *  media access Accounting sees is mirrored through it. */
    std::unique_ptr<disk::ZonedDevice> device_;

    ReadPipeline pipeline_;

    /** End-to-end latency of one logical read (telemetry). */
    telemetry::LatencyHistogram *readLatency_ = nullptr;

    /** Latency of the translate step alone (telemetry). */
    telemetry::LatencyHistogram *translateLatency_ = nullptr;

    /** Reusable per-request scratch for layer results; clear()
     *  keeps capacity, so steady-state requests do not allocate. */
    SegmentBuffer segmentScratch_;

    /** Columnar view of the batch currently being replayed. */
    IoEventBatch batch_;

    /** Batched translation results (reads / writes), reused. */
    SegmentBufferBatch readBatch_;
    SegmentBufferBatch writeBatch_;

    /** One event per batch record, reused across batches; sized to
     *  replayBatchSize on the first batch. */
    std::vector<IoEvent> events_;

    /** Upper bound of the adaptive read-translate chunk. */
    static constexpr std::size_t kReadTranslateChunkMax = 32;

    /** Current read-translate mini-chunk size in records; halves
     *  to 1 when a chunk is invalidated by a translation-mutating
     *  event and doubles back on every clean chunk (see
     *  serveReadRun). Persists across batches within the run so a
     *  defrag storm keeps replaying at scalar cost. */
    std::size_t readChunk_ = kReadTranslateChunkMax;

    /** layer_->hasMaintenance(), sampled once at construction. */
    bool layerHasMaintenance_ = false;

    /** True when the pipeline is exactly the media-access stage. */
    bool mediaOnly_ = false;

    /** Batching telemetry (self-gated on the global switch). */
    telemetry::Counter *batchesTotal_ = nullptr;
    telemetry::LatencyHistogram *batchSize_ = nullptr;

    /** Samples the layer's merge/cleaning counter; may be empty. */
    std::function<std::uint64_t()> cleaningMerges_;

    /** Samples the finite log's GC victim (live, span) byte
     *  totals; may be empty. */
    std::function<std::pair<std::uint64_t, std::uint64_t>()>
        gcVictimStats_;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_REPLAY_ENGINE_H
