#include "replay_engine.h"

#include <chrono>
#include <utility>

#include "stl/conventional.h"
#include "stl/defrag.h"
#include "stl/finite_log.h"
#include "stl/log_structured.h"
#include "stl/media_cache.h"
#include "stl/prefetch.h"
#include "stl/selective_cache.h"
#include "telemetry/trace_writer.h"
#include "util/logging.h"

namespace logseek::stl
{

namespace
{

/**
 * Relocation callback for the defrag trigger: rewrites an LBA range
 * contiguously at the layer's write frontier, filling the caller's
 * reusable buffer with the placed segments.
 */
using RelocateFn =
    std::function<void(const SectorExtent &, SegmentBuffer &)>;

/** §IV-C selective caching: serves fragments of fragmented reads. */
class SelectiveCacheStage : public ReadStage
{
  public:
    SelectiveCacheStage(const SelectiveCacheConfig &config,
                        Accounting &accounting)
        : cache_(config), accounting_(accounting)
    {
    }

    std::string_view name() const override
    {
        return "selective-cache";
    }

    ServeOutcome
    serve(const ReadFragment &fragment, IoEvent &event) override
    {
        // Algorithm 3 caches only fragments of fragmented reads;
        // un-fragmented reads bypass the cache entirely.
        if (!fragment.fragmented)
            return ServeOutcome::Miss;
        if (cache_.lookup(fragment.physical)) {
            accounting_.cacheHit(event);
            return ServeOutcome::Hit;
        }
        accounting_.cacheMiss();
        return ServeOutcome::Miss;
    }

    void
    onFetched(const ReadFragment &fragment,
              const SectorExtent &region) override
    {
        (void)region;
        // Admit the fragment itself, not the (possibly widened)
        // fetch region: caching prefetch slack would conflate the
        // two mechanisms.
        if (fragment.fragmented)
            cache_.admit(fragment.physical);
    }

  private:
    SelectiveCache cache_;
    Accounting &accounting_;
};

/** §IV-B look-ahead-behind prefetching via the drive buffer. */
class PrefetchStage : public ReadStage
{
  public:
    PrefetchStage(const PrefetchConfig &config,
                  Accounting &accounting)
        : prefetch_(config), accounting_(accounting)
    {
    }

    std::string_view name() const override { return "prefetch"; }

    ServeOutcome
    serve(const ReadFragment &fragment, IoEvent &event) override
    {
        // The drive buffer is consulted for every read; it is only
        // populated by look-ahead-behind fetches.
        if (prefetch_.lookup(fragment.physical)) {
            accounting_.prefetchHit(event);
            return ServeOutcome::Hit;
        }
        return ServeOutcome::Miss;
    }

    SectorExtent
    widenFetch(const ReadFragment &fragment,
               const SectorExtent &region) const override
    {
        // Algorithm 2 fetches around fragments of fragmented reads
        // only.
        if (!fragment.fragmented)
            return region;
        return prefetch_.fetchRegion(fragment.physical);
    }

    void
    onFetched(const ReadFragment &fragment,
              const SectorExtent &region) override
    {
        if (fragment.fragmented)
            prefetch_.admit(region);
    }

  private:
    Prefetcher prefetch_;
    Accounting &accounting_;
};

/** Terminal stage: transfer the fetch region from the media. */
class MediaAccessStage : public ReadStage
{
  public:
    explicit MediaAccessStage(Accounting &accounting)
        : accounting_(accounting)
    {
    }

    std::string_view name() const override { return "media"; }

    ServeOutcome
    serve(const ReadFragment &fragment, IoEvent &event) override
    {
        accounting_.hostAccess(event, fragment.fetchRegion,
                               trace::IoType::Read);
        return ServeOutcome::Fetched;
    }

  private:
    Accounting &accounting_;
};

/**
 * §IV-A opportunistic defragmentation: after a fragmented read is
 * served, optionally rewrite the range at the write frontier.
 */
class DefragStage : public ReadStage
{
  public:
    DefragStage(const DefragConfig &config, RelocateFn relocate,
                Accounting &accounting)
        : defrag_(config), relocate_(std::move(relocate)),
          accounting_(accounting)
    {
    }

    std::string_view name() const override { return "defrag"; }

    ServeOutcome
    serve(const ReadFragment &fragment, IoEvent &event) override
    {
        (void)fragment;
        (void)event;
        return ServeOutcome::Miss;
    }

    void
    onReadComplete(const trace::IoRecord &record,
                   IoEvent &event) override
    {
        // Algorithm 1: write back heavily fragmented ranges at the
        // log head, paying one extra (write) seek.
        if (!defrag_.onRead(record.extent, event.segments.size()))
            return;
        relocate_(record.extent, scratch_);
        event.defragSegments.assign(scratch_.begin(),
                                    scratch_.end());
        accounting_.defragRewrite(event, record.extent.bytes());
        for (const auto &segment : event.defragSegments)
            accounting_.hostAccess(event, segment.physical(),
                                   trace::IoType::Write);
    }

  private:
    Defragmenter defrag_;
    RelocateFn relocate_;
    Accounting &accounting_;
    SegmentBuffer scratch_;
};

} // namespace

void
ReadPipeline::addStage(std::unique_ptr<ReadStage> stage)
{
    panicIf(stage == nullptr, "ReadPipeline: null stage");
    StageSlot slot;
    const std::string label =
        "stage=\"" + std::string(stage->name()) + "\"";
    auto &registry = telemetry::Registry::global();
    slot.hits = &registry.counter("replay_stage_serves_total",
                                  label + ",outcome=\"hit\"");
    slot.fetches = &registry.counter("replay_stage_serves_total",
                                     label + ",outcome=\"fetched\"");
    slot.misses = &registry.counter("replay_stage_serves_total",
                                    label + ",outcome=\"miss\"");
    slot.serveLatency = &registry.histogram(
        "replay_stage_serve_latency_ns", label);
    slot.stage = std::move(stage);
    stages_.push_back(std::move(slot));
}

void
ReadPipeline::serveFragment(ReadFragment fragment, IoEvent &event)
{
    fragment.fetchRegion = fragment.physical;
    for (const auto &slot : stages_)
        fragment.fetchRegion =
            slot.stage->widenFetch(fragment, fragment.fetchRegion);

    // The branch on telemetry::enabled() keeps the clock reads
    // (and everything downstream of them) off the disabled path.
    const bool timed = telemetry::enabled();
    for (auto &slot : stages_) {
        ServeOutcome outcome;
        if (timed) {
            const auto start = std::chrono::steady_clock::now();
            outcome = slot.stage->serve(fragment, event);
            const auto ns =
                std::chrono::duration_cast<
                    std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            const std::uint64_t elapsed =
                ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
            slot.serveNs += elapsed;
            slot.serveLatency->record(elapsed);
            (outcome == ServeOutcome::Hit       ? slot.hits
             : outcome == ServeOutcome::Fetched ? slot.fetches
                                                : slot.misses)
                ->add();
        } else {
            outcome = slot.stage->serve(fragment, event);
        }
        switch (outcome) {
        case ServeOutcome::Miss:
            continue;
        case ServeOutcome::Hit:
            return;
        case ServeOutcome::Fetched:
            // The transfer populates the stages above the media;
            // notify bottom-up so admission order matches the data
            // flow.
            for (auto it = stages_.rbegin(); it != stages_.rend();
                 ++it)
                it->stage->onFetched(fragment, fragment.fetchRegion);
            return;
        }
    }
    panic("ReadPipeline: fragment fell through every stage "
          "(missing media-access stage?)");
}

void
ReadPipeline::completeRead(const trace::IoRecord &record,
                           IoEvent &event)
{
    for (const auto &slot : stages_)
        slot.stage->onReadComplete(record, event);
}

ReplayEngine::ReplayEngine(const SimConfig &config,
                           const trace::Trace &trace,
                           const std::vector<SimObserver *> &observers,
                           CancelToken cancel)
    : config_(config), trace_(trace), observers_(observers),
      cancel_(std::move(cancel)),
      accounting_(result_, config.seekTime)
{
    result_.workload = trace.name();
    result_.configLabel = config_.label();

    // Translation layer. Defragmentation needs a layer that can
    // relocate ranges to the frontier; both log variants can.
    RelocateFn relocate;
    if (config_.translation == TranslationKind::LogStructured) {
        auto ls = std::make_unique<LogStructuredLayer>(
            trace.addressSpaceEnd(), config_.zones);
        relocate = [raw = ls.get()](const SectorExtent &extent,
                                    SegmentBuffer &out) {
            raw->relocateInto(extent, out);
        };
        layer_ = std::move(ls);
    } else if (config_.translation ==
               TranslationKind::FiniteLogStructured) {
        auto fl = std::make_unique<FiniteLogStructuredLayer>(
            trace.addressSpaceEnd(), config_.finiteLog);
        relocate = [raw = fl.get()](const SectorExtent &extent,
                                    SegmentBuffer &out) {
            raw->relocateInto(extent, out);
        };
        cleaningMerges_ = [raw = fl.get()] {
            return raw->cleanings();
        };
        layer_ = std::move(fl);
    } else if (config_.translation == TranslationKind::MediaCache) {
        auto mc = std::make_unique<MediaCacheLayer>(
            trace.addressSpaceEnd(), config_.mediaCache);
        cleaningMerges_ = [raw = mc.get()] {
            return raw->mergeCount();
        };
        layer_ = std::move(mc);
    } else {
        layer_ = std::make_unique<ConventionalLayer>();
    }

    // Zoned-device realism layer: zone geometry is matched to the
    // translation layer's physical structure so in-policy traffic
    // is genuinely in policy — the finite log's segment reuse
    // lands on zone starts (reset + rewrite), the guarded LS
    // frontier jumps from zone start to zone start, and the
    // conventional layer's in-place writes hit conventional
    // zones.
    if (config_.zonedDevice) {
        const std::uint64_t identity_end =
            trace.addressSpaceEnd();
        disk::ZoneLayout layout;
        layout.maxOpenZones = config_.zonedDevice->maxOpenZones;
        std::uint64_t zone_bytes = 256 * kMiB;
        switch (config_.translation) {
        case TranslationKind::Conventional:
            layout.type = disk::ZoneType::Conventional;
            break;
        case TranslationKind::LogStructured:
            layout.type =
                disk::ZoneType::SequentialWriteRequired;
            layout.anchorSector = identity_end;
            if (config_.zones)
                zone_bytes = config_.zones->zoneBytes +
                             config_.zones->guardBytes;
            break;
        case TranslationKind::FiniteLogStructured:
            layout.type =
                disk::ZoneType::SequentialWriteRequired;
            layout.anchorSector = identity_end;
            zone_bytes = config_.finiteLog.segmentBytes;
            break;
        case TranslationKind::MediaCache:
            layout.type =
                disk::ZoneType::SequentialWritePreferred;
            layout.anchorSector = identity_end;
            break;
        }
        if (config_.zonedDevice->zoneBytes > 0)
            zone_bytes = config_.zonedDevice->zoneBytes;
        layout.zoneSectors = std::max<SectorCount>(
            1, bytesToSectors(zone_bytes));
        device_ = std::make_unique<disk::ZonedDevice>(
            layout, *config_.zonedDevice, cancel_);
        device_->fillTo(identity_end);
        accounting_.attachDevice(device_.get());
    }

    // Read path: selective cache → prefetch buffer → media access
    // → defrag trigger.
    if (config_.cache)
        pipeline_.addStage(std::make_unique<SelectiveCacheStage>(
            *config_.cache, accounting_));
    if (config_.prefetch)
        pipeline_.addStage(std::make_unique<PrefetchStage>(
            *config_.prefetch, accounting_));
    pipeline_.addStage(
        std::make_unique<MediaAccessStage>(accounting_));
    if (config_.defrag && relocate)
        pipeline_.addStage(std::make_unique<DefragStage>(
            *config_.defrag, std::move(relocate), accounting_));

    readLatency_ = &telemetry::Registry::global().histogram(
        "replay_read_latency_ns");
    translateLatency_ = &telemetry::Registry::global().histogram(
        "replay_translate_latency_ns");
}

ReplayEngine::~ReplayEngine() = default;

SimResult
ReplayEngine::run()
{
    // One IoEvent reused across the whole replay: reset() keeps the
    // segment/seek vectors' capacity, so the per-record loop stops
    // allocating once warmed up.
    IoEvent event;
    std::uint64_t op_index = 0;
    for (const auto &record : trace_) {
        // Cooperative cancellation point: checked once per record
        // batch so an over-deadline replay unwinds within
        // microseconds, with all layer invariants intact.
        if (op_index % kCancelCheckInterval == 0 &&
            cancel_.cancelled())
            throw StatusError(cancel_.toStatus(
                "replay of trace '" + trace_.name() + "'"));

        event.reset();
        event.opIndex = op_index++;
        event.record = record;

        if (record.isWrite())
            handleWrite(record, event);
        else
            handleRead(record, event);

        runMaintenance(event);

        for (auto *observer : observers_)
            observer->onEvent(event);
    }

    // Counters sampled once, after the loop: cleaningMerges only
    // ever grows, so the post-loop value equals the value after the
    // last request.
    if (cleaningMerges_)
        accounting_.setCleaningMerges(cleaningMerges_());
    accounting_.setStaticFragments(layer_->staticFragmentCount());
    accounting_.finishDevice();
    emitStageSpans();
    return std::move(result_);
}

void
ReplayEngine::emitStageSpans()
{
    // One aggregate span per stage per replay: per-fragment spans
    // would swamp the trace (millions of events), so the pipeline
    // accumulates serve time per stage and we emit it here as a
    // single back-dated span ending now.
    if (!telemetry::enabled())
        return;
    auto *writer = telemetry::globalTraceWriter();
    if (writer == nullptr)
        return;
    const std::uint64_t end = writer->nowUs();
    for (std::size_t i = 0; i < pipeline_.stageCount(); ++i) {
        telemetry::TraceSpan span;
        span.name = "stage:" + std::string(pipeline_.stageName(i));
        span.category = "replay-stage";
        span.durationUs = pipeline_.stageServeNs(i) / 1000;
        span.timestampUs =
            end > span.durationUs ? end - span.durationUs : 0;
        span.tid = telemetry::TraceEventWriter::currentTid();
        span.args = {{"workload", result_.workload},
                     {"config", result_.configLabel}};
        writer->emit(std::move(span));
    }
}

void
ReplayEngine::handleWrite(const trace::IoRecord &record,
                          IoEvent &event)
{
    accounting_.beginWrite(record.extent.bytes());
    layer_->placeWriteInto(record.extent, segmentScratch_);
    event.segments.assign(segmentScratch_.begin(),
                          segmentScratch_.end());
    for (const auto &segment : event.segments)
        accounting_.hostAccess(event, segment.physical(),
                               trace::IoType::Write);
}

void
ReplayEngine::handleRead(const trace::IoRecord &record,
                         IoEvent &event)
{
    const telemetry::ScopedTimer timer(readLatency_);
    accounting_.beginRead();
    {
        const telemetry::ScopedTimer translate_timer(
            translateLatency_);
        layer_->translateReadInto(record.extent, segmentScratch_);
    }
    mergePhysicallyContiguousInPlace(segmentScratch_);
    event.segments.assign(segmentScratch_.begin(),
                          segmentScratch_.end());
    accounting_.readFragmentation(event.segments.size());
    const bool fragmented = event.segments.size() >= 2;

    for (const auto &segment : event.segments)
        pipeline_.serveFragment(
            ReadFragment{segment.physical(), fragmented,
                         segment.physical()},
            event);

    pipeline_.completeRead(record, event);
}

void
ReplayEngine::runMaintenance(IoEvent &event)
{
    // Background cleaning owed by the layer (media-cache merges,
    // log garbage collection), accounted separately from
    // host-visible seeks.
    for (const MediaAccess &access : layer_->maintenance())
        accounting_.cleaningAccess(event, access);
}

} // namespace logseek::stl
