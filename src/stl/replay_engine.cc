#include "replay_engine.h"

#include <algorithm>
#include <chrono>
#include <span>
#include <utility>

#include "stl/conventional.h"
#include "stl/defrag.h"
#include "stl/finite_log.h"
#include "stl/fsck.h"
#include "stl/log_structured.h"
#include "stl/media_cache.h"
#include "stl/prefetch.h"
#include "stl/selective_cache.h"
#include "stl/sharded_translation.h"
#include "telemetry/trace_writer.h"
#include "util/logging.h"

namespace logseek::stl
{

namespace
{

/**
 * Relocation callback for the defrag trigger: rewrites an LBA range
 * contiguously at the layer's write frontier, filling the caller's
 * reusable buffer with the placed segments.
 */
using RelocateFn =
    std::function<void(const SectorExtent &, SegmentBuffer &)>;

/** §IV-C selective caching: serves fragments of fragmented reads. */
class SelectiveCacheStage : public ReadStage
{
  public:
    SelectiveCacheStage(const SelectiveCacheConfig &config,
                        Accounting &accounting)
        : cache_(config), accounting_(accounting)
    {
    }

    std::string_view name() const override
    {
        return "selective-cache";
    }

    ServeOutcome
    serve(const ReadFragment &fragment, IoEvent &event) override
    {
        // Algorithm 3 caches only fragments of fragmented reads;
        // un-fragmented reads bypass the cache entirely.
        if (!fragment.fragmented)
            return ServeOutcome::Miss;
        if (cache_.lookup(fragment.physical)) {
            accounting_.cacheHit(event);
            return ServeOutcome::Hit;
        }
        accounting_.cacheMiss();
        return ServeOutcome::Miss;
    }

    void
    onFetched(const ReadFragment &fragment,
              const SectorExtent &region) override
    {
        (void)region;
        // Admit the fragment itself, not the (possibly widened)
        // fetch region: caching prefetch slack would conflate the
        // two mechanisms.
        if (fragment.fragmented)
            cache_.admit(fragment.physical);
    }

  private:
    SelectiveCache cache_;
    Accounting &accounting_;
};

/** §IV-B look-ahead-behind prefetching via the drive buffer. */
class PrefetchStage : public ReadStage
{
  public:
    PrefetchStage(const PrefetchConfig &config,
                  Accounting &accounting)
        : prefetch_(config), accounting_(accounting)
    {
    }

    std::string_view name() const override { return "prefetch"; }

    ServeOutcome
    serve(const ReadFragment &fragment, IoEvent &event) override
    {
        // The drive buffer is consulted for every read; it is only
        // populated by look-ahead-behind fetches.
        if (prefetch_.lookup(fragment.physical)) {
            accounting_.prefetchHit(event);
            return ServeOutcome::Hit;
        }
        return ServeOutcome::Miss;
    }

    SectorExtent
    widenFetch(const ReadFragment &fragment,
               const SectorExtent &region) const override
    {
        // Algorithm 2 fetches around fragments of fragmented reads
        // only.
        if (!fragment.fragmented)
            return region;
        return prefetch_.fetchRegion(fragment.physical);
    }

    void
    onFetched(const ReadFragment &fragment,
              const SectorExtent &region) override
    {
        if (fragment.fragmented)
            prefetch_.admit(region);
    }

  private:
    Prefetcher prefetch_;
    Accounting &accounting_;
};

/** Terminal stage: transfer the fetch region from the media. */
class MediaAccessStage : public ReadStage
{
  public:
    explicit MediaAccessStage(Accounting &accounting)
        : accounting_(accounting)
    {
    }

    std::string_view name() const override { return "media"; }

    ServeOutcome
    serve(const ReadFragment &fragment, IoEvent &event) override
    {
        accounting_.hostAccess(event, fragment.fetchRegion,
                               trace::IoType::Read);
        return ServeOutcome::Fetched;
    }

  private:
    Accounting &accounting_;
};

/**
 * §IV-A opportunistic defragmentation: after a fragmented read is
 * served, optionally rewrite the range at the write frontier.
 */
class DefragStage : public ReadStage
{
  public:
    DefragStage(const DefragConfig &config, RelocateFn relocate,
                Accounting &accounting)
        : defrag_(config), relocate_(std::move(relocate)),
          accounting_(accounting)
    {
    }

    std::string_view name() const override { return "defrag"; }

    ServeOutcome
    serve(const ReadFragment &fragment, IoEvent &event) override
    {
        (void)fragment;
        (void)event;
        return ServeOutcome::Miss;
    }

    void
    onReadComplete(const trace::IoRecord &record,
                   IoEvent &event) override
    {
        // Algorithm 1: write back heavily fragmented ranges at the
        // log head, paying one extra (write) seek.
        if (!defrag_.onRead(record.extent, event.segments.size()))
            return;
        relocate_(record.extent, scratch_);
        event.defragSegments.assign(scratch_.begin(),
                                    scratch_.end());
        accounting_.defragRewrite(event, record.extent.bytes());
        for (const auto &segment : event.defragSegments)
            accounting_.hostAccess(event, segment.physical(),
                                   trace::IoType::Write);
    }

  private:
    Defragmenter defrag_;
    RelocateFn relocate_;
    Accounting &accounting_;
    SegmentBuffer scratch_;
};

/**
 * Copy a record's translated segments into `out`, merging
 * physically-and-logically adjacent neighbors on the way — one pass
 * instead of translateInto + mergeInPlace + assign. The predicate
 * is exactly mergePhysicallyContiguousInPlace's, so the result is
 * byte-identical to the three-step form.
 */
void
mergeAssign(const Segment *begin, const Segment *end,
            std::vector<Segment> &out)
{
    out.clear();
    for (const Segment *s = begin; s != end; ++s) {
        if (!out.empty()) {
            Segment &last = out.back();
            if (last.pba + last.logical.count == s->pba &&
                last.logical.end() == s->logical.start) {
                last.logical.count += s->logical.count;
                last.mapped = last.mapped || s->mapped;
                continue;
            }
        }
        out.push_back(*s);
    }
}

} // namespace

void
ReadPipeline::addStage(std::unique_ptr<ReadStage> stage)
{
    panicIf(stage == nullptr, "ReadPipeline: null stage");
    StageSlot slot;
    const std::string label =
        "stage=\"" + std::string(stage->name()) + "\"";
    auto &registry = telemetry::Registry::global();
    slot.hits = &registry.counter("replay_stage_serves_total",
                                  label + ",outcome=\"hit\"");
    slot.fetches = &registry.counter("replay_stage_serves_total",
                                     label + ",outcome=\"fetched\"");
    slot.misses = &registry.counter("replay_stage_serves_total",
                                    label + ",outcome=\"miss\"");
    slot.serveLatency = &registry.histogram(
        "replay_stage_serve_latency_ns", label);
    slot.stage = std::move(stage);
    stages_.push_back(std::move(slot));
}

void
ReadPipeline::serveFragment(ReadFragment fragment, IoEvent &event)
{
    fragment.fetchRegion = fragment.physical;
    for (const auto &slot : stages_)
        fragment.fetchRegion =
            slot.stage->widenFetch(fragment, fragment.fetchRegion);

    // The branch on telemetry::enabled() keeps the clock reads
    // (and everything downstream of them) off the disabled path.
    const bool timed = telemetry::enabled();
    for (auto &slot : stages_) {
        ServeOutcome outcome;
        if (timed) {
            const auto start = std::chrono::steady_clock::now();
            outcome = slot.stage->serve(fragment, event);
            const auto ns =
                std::chrono::duration_cast<
                    std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            const std::uint64_t elapsed =
                ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
            slot.serveNs += elapsed;
            slot.serveLatency->record(elapsed);
            (outcome == ServeOutcome::Hit       ? slot.hits
             : outcome == ServeOutcome::Fetched ? slot.fetches
                                                : slot.misses)
                ->add();
        } else {
            outcome = slot.stage->serve(fragment, event);
        }
        switch (outcome) {
        case ServeOutcome::Miss:
            continue;
        case ServeOutcome::Hit:
            return;
        case ServeOutcome::Fetched:
            // The transfer populates the stages above the media;
            // notify bottom-up so admission order matches the data
            // flow.
            for (auto it = stages_.rbegin(); it != stages_.rend();
                 ++it)
                it->stage->onFetched(fragment, fragment.fetchRegion);
            return;
        }
    }
    panic("ReadPipeline: fragment fell through every stage "
          "(missing media-access stage?)");
}

void
ReadPipeline::completeRead(const trace::IoRecord &record,
                           IoEvent &event)
{
    for (const auto &slot : stages_)
        slot.stage->onReadComplete(record, event);
}

ReplayEngine::ReplayEngine(const SimConfig &config,
                           const trace::Trace &trace,
                           const std::vector<SimObserver *> &observers,
                           CancelToken cancel)
    : ReplayEngine(config,
                   std::make_unique<trace::TraceRef>(trace),
                   observers, std::move(cancel))
{
}

ReplayEngine::ReplayEngine(const SimConfig &config,
                           std::unique_ptr<trace::TraceInput> owned,
                           const std::vector<SimObserver *> &observers,
                           CancelToken cancel)
    : ReplayEngine(config, *owned, observers, std::move(cancel))
{
    // The delegated ctor stored &*owned in input_; moving the
    // unique_ptr into the member does not relocate the pointee.
    ownedInput_ = std::move(owned);
}

ReplayEngine::ReplayEngine(const SimConfig &config,
                           trace::TraceInput &input,
                           const std::vector<SimObserver *> &observers,
                           CancelToken cancel)
    : config_(config), input_(&input), observers_(observers),
      cancel_(std::move(cancel)),
      accounting_(result_, config.seekTime)
{
    result_.workload = input.name();
    result_.configLabel = config_.label();

    panicIf(config_.replayBatchSize < 1 ||
                config_.replayBatchSize > 65536,
            "ReplayEngine: replayBatchSize out of [1, 65536]");
    panicIf(config_.replayShards < 1 || config_.replayShards > 256,
            "ReplayEngine: replayShards out of [1, 256]");
    if (config_.replayShards > 1)
        accounting_.enableDeferred(
            static_cast<std::size_t>(config_.replayShards),
            config_.shardExecutor);

    // Translation layer. Defragmentation needs a layer that can
    // relocate ranges to the frontier; both log variants can.
    // Sharding swaps the log-structured layer for its LBA-striped
    // twin (byte-identical placement and translation after the
    // engine's contiguity merge); the other layers keep their
    // single structure and shard accounting only.
    RelocateFn relocate;
    if (config_.translation == TranslationKind::LogStructured &&
        config_.replayShards > 1 && input.addressSpaceEnd() > 0) {
        auto ls = std::make_unique<ShardedTranslation>(
            input.addressSpaceEnd(),
            static_cast<std::size_t>(config_.replayShards),
            config_.zones);
        relocate = [raw = ls.get()](const SectorExtent &extent,
                                    SegmentBuffer &out) {
            raw->relocateInto(extent, out);
        };
        layer_ = std::move(ls);
    } else if (config_.translation ==
               TranslationKind::LogStructured) {
        auto ls = std::make_unique<LogStructuredLayer>(
            input.addressSpaceEnd(), config_.zones);
        relocate = [raw = ls.get()](const SectorExtent &extent,
                                    SegmentBuffer &out) {
            raw->relocateInto(extent, out);
        };
        layer_ = std::move(ls);
    } else if (config_.translation ==
               TranslationKind::FiniteLogStructured) {
        auto fl = std::make_unique<FiniteLogStructuredLayer>(
            input.addressSpaceEnd(), config_.finiteLog);
        relocate = [raw = fl.get()](const SectorExtent &extent,
                                    SegmentBuffer &out) {
            raw->relocateInto(extent, out);
        };
        cleaningMerges_ = [raw = fl.get()] {
            return raw->cleanings();
        };
        gcVictimStats_ = [raw = fl.get()] {
            return std::make_pair(raw->gcVictimLiveBytes(),
                                  raw->gcVictimSpanBytes());
        };
        layer_ = std::move(fl);
    } else if (config_.translation == TranslationKind::MediaCache) {
        auto mc = std::make_unique<MediaCacheLayer>(
            input.addressSpaceEnd(), config_.mediaCache);
        cleaningMerges_ = [raw = mc.get()] {
            return raw->mergeCount();
        };
        layer_ = std::move(mc);
    } else {
        layer_ = std::make_unique<ConventionalLayer>();
    }
    if (config_.journal != nullptr)
        layer_->attachJournal(config_.journal);

    // Zoned-device realism layer: zone geometry is matched to the
    // translation layer's physical structure so in-policy traffic
    // is genuinely in policy — the finite log's segment reuse
    // lands on zone starts (reset + rewrite), the guarded LS
    // frontier jumps from zone start to zone start, and the
    // conventional layer's in-place writes hit conventional
    // zones.
    if (config_.zonedDevice) {
        const std::uint64_t identity_end =
            input.addressSpaceEnd();
        disk::ZoneLayout layout;
        layout.maxOpenZones = config_.zonedDevice->maxOpenZones;
        std::uint64_t zone_bytes = 256 * kMiB;
        switch (config_.translation) {
        case TranslationKind::Conventional:
            layout.type = disk::ZoneType::Conventional;
            break;
        case TranslationKind::LogStructured:
            layout.type =
                disk::ZoneType::SequentialWriteRequired;
            layout.anchorSector = identity_end;
            if (config_.zones)
                zone_bytes = config_.zones->zoneBytes +
                             config_.zones->guardBytes;
            break;
        case TranslationKind::FiniteLogStructured:
            layout.type =
                disk::ZoneType::SequentialWriteRequired;
            layout.anchorSector = identity_end;
            zone_bytes = config_.finiteLog.segmentBytes;
            break;
        case TranslationKind::MediaCache:
            layout.type =
                disk::ZoneType::SequentialWritePreferred;
            layout.anchorSector = identity_end;
            break;
        }
        if (config_.zonedDevice->zoneBytes > 0)
            zone_bytes = config_.zonedDevice->zoneBytes;
        layout.zoneSectors = std::max<SectorCount>(
            1, bytesToSectors(zone_bytes));
        device_ = std::make_unique<disk::ZonedDevice>(
            layout, *config_.zonedDevice, cancel_);
        device_->fillTo(identity_end);
        accounting_.attachDevice(device_.get());
    }

    // Read path: selective cache → prefetch buffer → media access
    // → defrag trigger.
    if (config_.cache)
        pipeline_.addStage(std::make_unique<SelectiveCacheStage>(
            *config_.cache, accounting_));
    if (config_.prefetch)
        pipeline_.addStage(std::make_unique<PrefetchStage>(
            *config_.prefetch, accounting_));
    pipeline_.addStage(
        std::make_unique<MediaAccessStage>(accounting_));
    if (config_.defrag && relocate)
        pipeline_.addStage(std::make_unique<DefragStage>(
            *config_.defrag, std::move(relocate), accounting_));

    layerHasMaintenance_ = layer_->hasMaintenance();
    mediaOnly_ = pipeline_.stageCount() == 1;

    readLatency_ = &telemetry::Registry::global().histogram(
        "replay_read_latency_ns");
    translateLatency_ = &telemetry::Registry::global().histogram(
        "replay_translate_latency_ns");
    batchesTotal_ = &telemetry::Registry::global().counter(
        "replay_batches_total");
    batchSize_ = &telemetry::Registry::global().histogram(
        "replay_batch_size");
}

ReplayEngine::~ReplayEngine() = default;

SimResult
ReplayEngine::run()
{
    const auto batch_size =
        static_cast<std::size_t>(config_.replayBatchSize);

    // The batch's events are reused across batches: reset() keeps
    // the segment/seek vectors' capacity, so the replay loop stops
    // allocating once every slot has warmed up.
    if (events_.size() < batch_size)
        events_.resize(batch_size);

    // Pull-based replay: the input hands over one batch at a time
    // (an in-RAM copy, a zero-copy mmap span or a freshly
    // synthesized chunk — the loop cannot tell), so memory use is
    // bounded by one batch regardless of the workload's size.
    input_->reset();
    std::uint64_t base = 0;
    for (;;) {
        const std::size_t n = input_->next(batch_, batch_size);
        if (n == 0)
            break;
        // Cooperative cancellation: polled at every batch boundary
        // here and every kCancelCheckInterval records inside the
        // serving loops, so an over-deadline replay unwinds within
        // microseconds with all layer invariants intact.
        if (cancel_.cancelled())
            throwCancelled();

        batchesTotal_->add();
        batchSize_->record(n);

        // The telemetry switch is sampled once per batch: the
        // media-only fast path skips the pipeline (and with it the
        // per-stage counters), so it must stay off while telemetry
        // is on.
        const bool fast_media_only =
            mediaOnly_ && !telemetry::enabled();

        std::size_t i = 0;
        while (i < n) {
            const std::size_t run_end = batch_.runEnd(i);
            if (batch_.type(i) == trace::IoType::Read)
                serveReadRun(base, i, run_end, fast_media_only);
            else
                serveWriteRun(base, i, run_end);
            i = run_end;
        }

        // Sharded mode: resolve the deferred seek classification
        // before the events are shown to observers or recycled.
        if (accounting_.deferredEnabled())
            accounting_.flushDeferred();

        for (std::size_t k = 0; k < n; ++k)
            for (auto *observer : observers_)
                observer->onEvent(events_[k]);

        base += n;
    }

    // Counters sampled once, after the loop: cleaningMerges only
    // ever grows, so the post-loop value equals the value after the
    // last request.
    if (cleaningMerges_)
        accounting_.setCleaningMerges(cleaningMerges_());
    if (gcVictimStats_) {
        const auto [live, span] = gcVictimStats_();
        accounting_.setGcVictimStats(live, span);
    }
    accounting_.setStaticFragments(layer_->staticFragmentCount());
    accounting_.finishDevice();
    emitStageSpans();

    // --paranoid: the in-memory translation state and the durable
    // journal must agree at the end of every run.
    if (config_.paranoidFsck && config_.journal != nullptr) {
        const FsckReport fsck =
            Fsck::check(*layer_, *config_.journal);
        if (!fsck.ok())
            fatal("paranoid fsck failed after replay of '" +
                  input_->name() + "': " + fsck.toString());
    }
    return std::move(result_);
}

void
ReplayEngine::throwCancelled()
{
    throw StatusError(cancel_.toStatus("replay of trace '" +
                                       input_->name() + "'"));
}

void
ReplayEngine::emitStageSpans()
{
    // One aggregate span per stage per replay: per-fragment spans
    // would swamp the trace (millions of events), so the pipeline
    // accumulates serve time per stage and we emit it here as a
    // single back-dated span ending now.
    if (!telemetry::enabled())
        return;
    auto *writer = telemetry::globalTraceWriter();
    if (writer == nullptr)
        return;
    const std::uint64_t end = writer->nowUs();
    for (std::size_t i = 0; i < pipeline_.stageCount(); ++i) {
        telemetry::TraceSpan span;
        span.name = "stage:" + std::string(pipeline_.stageName(i));
        span.category = "replay-stage";
        span.durationUs = pipeline_.stageServeNs(i) / 1000;
        span.timestampUs =
            end > span.durationUs ? end - span.durationUs : 0;
        span.tid = telemetry::TraceEventWriter::currentTid();
        span.args = {{"workload", result_.workload},
                     {"config", result_.configLabel}};
        writer->emit(std::move(span));
    }
}

void
ReplayEngine::translateRun(std::size_t begin, std::size_t end,
                           bool sampled)
{
    const std::span<const SectorExtent> extents(
        batch_.extentData() + begin, end - begin);
    if (sampled && telemetry::enabled()) {
        const auto start = std::chrono::steady_clock::now();
        layer_->translateReadBatchInto(extents, readBatch_);
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        // Amortized: one equal sample per record keeps the
        // histogram count equal to result.reads, the contract the
        // telemetry tests pin.
        const std::uint64_t per =
            ns > 0 ? static_cast<std::uint64_t>(ns) /
                         (end - begin)
                   : 0;
        for (std::size_t k = begin; k < end; ++k)
            translateLatency_->record(per);
    } else {
        layer_->translateReadBatchInto(extents, readBatch_);
    }
}

void
ReplayEngine::serveReadRun(std::uint64_t base, std::size_t begin,
                           std::size_t end, bool fast_media_only)
{
    // Reads are translated lazily in adaptive mini-chunks, one
    // batched virtual call per chunk. Small chunks keep the
    // translated segments cache-hot when served (a whole-run
    // translate of a 256-record batch evicts its own head before
    // the serve pass reaches it) and bound the work a
    // translation-mutating event (defrag rewrite, cleaning) can
    // invalidate: the rest of the mutated chunk falls back to
    // record-at-a-time translation and the next chunk — translated
    // only after the mutation — resumes batching. The chunk size
    // adapts to the mutation rate: a mutation collapses it to 1
    // (defrag storms replay at scalar cost instead of paying for
    // translations that are thrown away), and every clean chunk
    // doubles it back up to kReadTranslateChunkMax. Re-batching
    // the remainder instead would go quadratic when most reads
    // mutate.
    std::size_t chunk_begin = begin;
    std::size_t chunk_end = begin; // nothing translated yet
    bool batched = true;
    bool translated_any = false;
    bool chunk_mutated = false;
    const auto grow_chunk = [this] {
        readChunk_ =
            std::min(readChunk_ * 2, kReadTranslateChunkMax);
    };

    for (std::size_t k = begin; k < end; ++k) {
        const std::uint64_t op = base + k;
        if (op % kCancelCheckInterval == 0 && cancel_.cancelled())
            throwCancelled();

        if (k == chunk_end) {
            if (translated_any && !chunk_mutated)
                grow_chunk();
            chunk_begin = k;
            chunk_end = std::min(k + readChunk_, end);
            translateRun(chunk_begin, chunk_end, /*sampled=*/true);
            batched = true;
            translated_any = true;
            chunk_mutated = false;
        }

        IoEvent &event = events_[k];
        event.reset();
        event.opIndex = op;
        event.record = batch_.record(k);

        const telemetry::ScopedTimer timer(readLatency_);
        accounting_.beginRead();
        if (batched) {
            mergeAssign(readBatch_.recordBegin(k - chunk_begin),
                        readBatch_.recordEnd(k - chunk_begin),
                        event.segments);
        } else {
            layer_->translateReadInto(event.record.extent,
                                      segmentScratch_);
            mergeAssign(segmentScratch_.begin(),
                        segmentScratch_.end(), event.segments);
        }
        accounting_.readFragmentation(event.segments.size());
        const bool fragmented = event.segments.size() >= 2;

        if (fast_media_only) {
            // Pipeline == {media access} and telemetry is off: the
            // serve pass reduces to one host access per fragment
            // (no widening, no admissions, no completion hooks),
            // so skip the stage machinery entirely.
            for (const auto &segment : event.segments)
                accounting_.hostAccess(event, segment.physical(),
                                       trace::IoType::Read);
        } else {
            for (const auto &segment : event.segments)
                pipeline_.serveFragment(
                    ReadFragment{segment.physical(), fragmented,
                                 segment.physical()},
                    event);
            pipeline_.completeRead(event.record, event);
        }

        bool mutated = event.defragRewrite;
        if (layerHasMaintenance_)
            mutated |= runMaintenance(event);
        if (mutated) {
            batched = false;
            chunk_mutated = true;
            readChunk_ = 1;
        }
    }
    if (translated_any && !chunk_mutated)
        grow_chunk();
}

void
ReplayEngine::serveWriteRun(std::uint64_t base, std::size_t begin,
                            std::size_t end)
{
    if (!layerHasMaintenance_) {
        // Maintenance-free layers (conventional, log-structured):
        // place the whole run with one batched virtual call.
        // Placement order equals record order, so the per-record
        // segments are exactly the scalar sequence's.
        const std::span<const SectorExtent> extents(
            batch_.extentData() + begin, end - begin);
        layer_->placeWriteBatchInto(extents, writeBatch_);
        for (std::size_t k = begin; k < end; ++k) {
            const std::uint64_t op = base + k;
            if (op % kCancelCheckInterval == 0 &&
                cancel_.cancelled())
                throwCancelled();

            IoEvent &event = events_[k];
            event.reset();
            event.opIndex = op;
            event.record = batch_.record(k);

            accounting_.beginWrite(event.record.extent.bytes());
            event.segments.assign(
                writeBatch_.recordBegin(k - begin),
                writeBatch_.recordEnd(k - begin));
            for (const auto &segment : event.segments)
                accounting_.hostAccess(event, segment.physical(),
                                       trace::IoType::Write);
        }
        return;
    }

    // Layers that owe background work (finite log, media cache)
    // must interleave maintenance record-by-record — batching their
    // writes would let the log overrun its cleaning reserve.
    for (std::size_t k = begin; k < end; ++k) {
        const std::uint64_t op = base + k;
        if (op % kCancelCheckInterval == 0 && cancel_.cancelled())
            throwCancelled();

        IoEvent &event = events_[k];
        event.reset();
        event.opIndex = op;
        event.record = batch_.record(k);

        accounting_.beginWrite(event.record.extent.bytes());
        layer_->placeWriteInto(event.record.extent,
                               segmentScratch_);
        event.segments.assign(segmentScratch_.begin(),
                              segmentScratch_.end());
        for (const auto &segment : event.segments)
            accounting_.hostAccess(event, segment.physical(),
                                   trace::IoType::Write);
        runMaintenance(event);
    }
}

bool
ReplayEngine::runMaintenance(IoEvent &event)
{
    if (!layerHasMaintenance_)
        return false;
    // Background cleaning owed by the layer (media-cache merges,
    // log garbage collection), accounted separately from
    // host-visible seeks.
    bool any = false;
    for (const MediaAccess &access : layer_->maintenance()) {
        any = true;
        accounting_.cleaningAccess(event, access);
    }
    return any;
}

} // namespace logseek::stl
