#include "defrag.h"

#include "util/logging.h"

namespace logseek::stl
{

Defragmenter::Defragmenter(const DefragConfig &config)
    : config_(config)
{
    panicIf(config_.minFragments < 2,
            "Defragmenter: minFragments below 2 would rewrite "
            "unfragmented reads");
    panicIf(config_.minAccesses < 1,
            "Defragmenter: minAccesses must be at least 1");
}

bool
Defragmenter::onRead(const SectorExtent &logical, std::size_t fragments)
{
    if (fragments < config_.minFragments)
        return false;

    if (config_.minAccesses > 1) {
        const auto key = std::make_pair(logical.start, logical.count);
        const std::uint32_t seen = ++accessCounts_[key];
        if (seen < config_.minAccesses)
            return false;
        accessCounts_.erase(key);
    }

    ++rewrites_;
    return true;
}

} // namespace logseek::stl
