#include "defrag.h"

#include "util/logging.h"

namespace logseek::stl
{

namespace
{

constexpr std::size_t kInitialSlots = 64; // power of two

/** splitmix64 finalizer over the packed (lba, count) key. */
std::uint64_t
mixKey(Lba lba, SectorCount count)
{
    std::uint64_t x = (lba << 16) ^ (lba >> 48) ^ count;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

Defragmenter::AccessCountMap::AccessCountMap()
    : slots_(kInitialSlots)
{
}

std::size_t
Defragmenter::AccessCountMap::slotFor(Lba lba,
                                      SectorCount count) const
{
    const std::size_t mask = slots_.size() - 1;
    std::size_t i =
        static_cast<std::size_t>(mixKey(lba, count)) & mask;
    while (slots_[i].used &&
           (slots_[i].lba != lba || slots_[i].count != count))
        i = (i + 1) & mask;
    return i;
}

void
Defragmenter::AccessCountMap::grow()
{
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot &slot : old) {
        if (!slot.used)
            continue;
        std::size_t i = static_cast<std::size_t>(
                            mixKey(slot.lba, slot.count)) &
                        mask;
        while (slots_[i].used)
            i = (i + 1) & mask;
        slots_[i] = slot;
    }
}

std::uint32_t
Defragmenter::AccessCountMap::increment(Lba lba, SectorCount count)
{
    // Keep the load factor below 1/2 so probe chains stay short.
    if ((size_ + 1) * 2 > slots_.size())
        grow();
    Slot &slot = slots_[slotFor(lba, count)];
    if (!slot.used) {
        slot.lba = lba;
        slot.count = count;
        slot.hits = 0;
        slot.used = true;
        ++size_;
    }
    return ++slot.hits;
}

void
Defragmenter::AccessCountMap::erase(Lba lba, SectorCount count)
{
    std::size_t i = slotFor(lba, count);
    if (!slots_[i].used)
        return;
    slots_[i].used = false;
    --size_;

    // Backward-shift deletion: re-seat the probe chain following
    // the hole so lookups never lose entries to a gap.
    const std::size_t mask = slots_.size() - 1;
    std::size_t j = i;
    while (true) {
        j = (j + 1) & mask;
        if (!slots_[j].used)
            return;
        const std::size_t home =
            static_cast<std::size_t>(
                mixKey(slots_[j].lba, slots_[j].count)) &
            mask;
        // Shift j into the hole unless its home lies in (i, j]
        // (cyclically), in which case the chain still reaches it.
        const bool reachable = i < j ? (home > i && home <= j)
                                     : (home > i || home <= j);
        if (!reachable) {
            slots_[i] = slots_[j];
            slots_[j].used = false;
            i = j;
        }
    }
}

Defragmenter::Defragmenter(const DefragConfig &config)
    : config_(config)
{
    panicIf(config_.minFragments < 2,
            "Defragmenter: minFragments below 2 would rewrite "
            "unfragmented reads");
    panicIf(config_.minAccesses < 1,
            "Defragmenter: minAccesses must be at least 1");
}

bool
Defragmenter::onRead(const SectorExtent &logical, std::size_t fragments)
{
    if (fragments < config_.minFragments)
        return false;

    if (config_.minAccesses > 1) {
        const std::uint32_t seen =
            accessCounts_.increment(logical.start, logical.count);
        if (seen < config_.minAccesses)
            return false;
        accessCounts_.erase(logical.start, logical.count);
    }

    ++rewrites_;
    return true;
}

} // namespace logseek::stl
