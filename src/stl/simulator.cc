#include "simulator.h"

#include "stl/replay_engine.h"
#include "util/logging.h"

namespace logseek::stl
{

double
SimResult::writeAmplification() const
{
    if (hostWriteBytes == 0)
        return 1.0;
    return static_cast<double>(mediaWriteBytes +
                               cleaningWriteBytes) /
           static_cast<double>(hostWriteBytes);
}

std::string
SimConfig::label() const
{
    std::string out;
    if (translation == TranslationKind::Conventional) {
        out = "NoLS";
    } else if (translation == TranslationKind::MediaCache) {
        out = "MediaCache";
    } else {
        if (translation == TranslationKind::FiniteLogStructured) {
            out = "FiniteLS";
            // Non-default GC configurations are visible in the
            // label so sweep cells stay distinguishable.
            if (finiteLog.gc.policy ==
                gc::CleaningPolicyKind::CostBenefit)
                out += "+cb";
            else if (finiteLog.gc.policy ==
                     gc::CleaningPolicyKind::ZoneGranular)
                out += "+zg";
            if (finiteLog.gc.streams > 1)
                out += "+s" +
                       std::to_string(finiteLog.gc.streams);
        } else {
            out = "LS";
        }
        if (defrag)
            out += "+defrag";
        if (prefetch)
            out += "+prefetch";
        if (cache)
            out += "+cache";
    }
    if (zonedDevice)
        out += "+zdev";
    return out;
}

Simulator::Simulator(const SimConfig &config)
    : config_(config)
{
}

void
Simulator::addObserver(SimObserver *observer)
{
    panicIf(observer == nullptr, "Simulator: null observer");
    observers_.push_back(observer);
}

void
Simulator::clearObservers()
{
    observers_.clear();
}

Status
Simulator::validateTrace(const trace::Trace &trace)
{
    trace::TraceRef ref(trace);
    return validateInput(ref);
}

Status
Simulator::validateInput(trace::TraceInput &input)
{
    input.reset();
    trace::IoEventBatch batch;
    std::uint64_t index = 0;
    for (;;) {
        const std::size_t n = input.next(batch, 4096);
        if (n == 0)
            break;
        for (std::size_t k = 0; k < n; ++k, ++index) {
            const SectorExtent &extent = batch.extent(k);
            if (extent.empty())
                return invalidArgumentError(
                    "trace '" + input.name() + "': record " +
                    std::to_string(index) +
                    " has an empty extent");
            if (extent.start + extent.count < extent.start)
                return invalidArgumentError(
                    "trace '" + input.name() + "': record " +
                    std::to_string(index) +
                    " sector range overflows the address space");
        }
    }
    return Status();
}

SimResult
Simulator::run(const trace::Trace &trace)
{
    StatusOr<SimResult> result = tryRun(trace);
    if (!result.ok())
        result.status().orFatal();
    return std::move(result).value();
}

SimResult
Simulator::run(trace::TraceInput &input)
{
    StatusOr<SimResult> result = tryRun(input);
    if (!result.ok())
        result.status().orFatal();
    return std::move(result).value();
}

StatusOr<SimResult>
Simulator::tryRun(const trace::Trace &trace, CancelToken cancel)
{
    trace::TraceRef ref(trace);
    return tryRun(ref, std::move(cancel));
}

StatusOr<SimResult>
Simulator::tryRun(trace::TraceInput &input, CancelToken cancel)
{
    if (config_.replayShards < 1 || config_.replayShards > 256)
        return invalidArgumentError(
            "replayShards must be in [1, 256]; got " +
            std::to_string(config_.replayShards));
    if (config_.replayBatchSize < 1 ||
        config_.replayBatchSize > 65536)
        return invalidArgumentError(
            "replayBatchSize must be in [1, 65536]; got " +
            std::to_string(config_.replayBatchSize));
    Status valid = validateInput(input);
    if (!valid.ok())
        return valid;
    try {
        return replay(input, cancel);
    } catch (const StatusError &e) {
        // Cooperative cancellation (or another typed failure) from
        // inside the replay loop: pass the Status through intact so
        // callers can tell DeadlineExceeded from Cancelled.
        return e.status();
    } catch (const PanicError &e) {
        return internalError("replay of trace '" + input.name() +
                             "' hit an internal bug: " + e.what());
    } catch (const FatalError &e) {
        return invalidArgumentError("replay of trace '" +
                                    input.name() +
                                    "' failed: " + e.what());
    }
}

SimResult
Simulator::replay(trace::TraceInput &input,
                  const CancelToken &cancel)
{
    ReplayEngine engine(config_, input, observers_, cancel);
    return engine.run();
}

std::pair<SimResult, SimResult>
runWithBaseline(const trace::Trace &trace, const SimConfig &ls_config,
                const std::vector<SimObserver *> &observers)
{
    SimConfig baseline_config;
    baseline_config.translation = TranslationKind::Conventional;
    baseline_config.seekTime = ls_config.seekTime;
    baseline_config.replayShards = ls_config.replayShards;
    baseline_config.replayBatchSize = ls_config.replayBatchSize;
    baseline_config.shardExecutor = ls_config.shardExecutor;

    Simulator baseline(baseline_config);
    Simulator log_structured(ls_config);
    for (SimObserver *observer : observers) {
        baseline.addObserver(observer);
        log_structured.addObserver(observer);
    }
    return {baseline.run(trace), log_structured.run(trace)};
}

std::optional<double>
seekAmplification(const SimResult &baseline, const SimResult &ls)
{
    if (baseline.totalSeeks() == 0)
        return std::nullopt;
    return static_cast<double>(ls.totalSeeks()) /
           static_cast<double>(baseline.totalSeeks());
}

} // namespace logseek::stl
