#include "simulator.h"

#include <functional>

#include "stl/conventional.h"
#include "stl/log_structured.h"
#include "util/logging.h"

namespace logseek::stl
{

double
SimResult::writeAmplification() const
{
    if (hostWriteBytes == 0)
        return 1.0;
    return static_cast<double>(mediaWriteBytes +
                               cleaningWriteBytes) /
           static_cast<double>(hostWriteBytes);
}

std::string
SimConfig::label() const
{
    if (translation == TranslationKind::Conventional)
        return "NoLS";
    if (translation == TranslationKind::MediaCache)
        return "MediaCache";
    std::string out = translation ==
                              TranslationKind::FiniteLogStructured
                          ? "FiniteLS"
                          : "LS";
    if (defrag)
        out += "+defrag";
    if (prefetch)
        out += "+prefetch";
    if (cache)
        out += "+cache";
    return out;
}

Simulator::Simulator(const SimConfig &config)
    : config_(config)
{
}

void
Simulator::addObserver(SimObserver *observer)
{
    panicIf(observer == nullptr, "Simulator: null observer");
    observers_.push_back(observer);
}

void
Simulator::clearObservers()
{
    observers_.clear();
}

Status
Simulator::validateTrace(const trace::Trace &trace)
{
    std::uint64_t index = 0;
    for (const auto &record : trace) {
        if (record.extent.empty())
            return invalidArgumentError(
                "trace '" + trace.name() + "': record " +
                std::to_string(index) + " has an empty extent");
        if (record.extent.start + record.extent.count <
            record.extent.start)
            return invalidArgumentError(
                "trace '" + trace.name() + "': record " +
                std::to_string(index) +
                " sector range overflows the address space");
        ++index;
    }
    return Status();
}

SimResult
Simulator::run(const trace::Trace &trace)
{
    StatusOr<SimResult> result = tryRun(trace);
    if (!result.ok())
        result.status().orFatal();
    return std::move(result).value();
}

StatusOr<SimResult>
Simulator::tryRun(const trace::Trace &trace)
{
    Status valid = validateTrace(trace);
    if (!valid.ok())
        return valid;
    try {
        return replay(trace);
    } catch (const PanicError &e) {
        return internalError("replay of trace '" + trace.name() +
                             "' hit an internal bug: " + e.what());
    } catch (const FatalError &e) {
        return invalidArgumentError("replay of trace '" +
                                    trace.name() +
                                    "' failed: " + e.what());
    }
}

SimResult
Simulator::replay(const trace::Trace &trace)
{
    SimResult result;
    result.workload = trace.name();
    result.configLabel = config_.label();

    // Fresh per-run state.
    std::unique_ptr<TranslationLayer> layer;
    MediaCacheLayer *media_cache_layer = nullptr;
    FiniteLogStructuredLayer *finite_layer = nullptr;
    // Defragmentation needs a layer that can relocate ranges to
    // the frontier; both log variants can.
    std::function<std::vector<Segment>(const SectorExtent &)>
        relocate;
    if (config_.translation == TranslationKind::LogStructured) {
        auto ls = std::make_unique<LogStructuredLayer>(
            trace.addressSpaceEnd(), config_.zones);
        auto *raw = ls.get();
        relocate = [raw](const SectorExtent &extent) {
            return raw->relocate(extent);
        };
        layer = std::move(ls);
    } else if (config_.translation ==
               TranslationKind::FiniteLogStructured) {
        auto fl = std::make_unique<FiniteLogStructuredLayer>(
            trace.addressSpaceEnd(), config_.finiteLog);
        finite_layer = fl.get();
        relocate = [raw = fl.get()](const SectorExtent &extent) {
            return raw->relocate(extent);
        };
        layer = std::move(fl);
    } else if (config_.translation == TranslationKind::MediaCache) {
        auto mc = std::make_unique<MediaCacheLayer>(
            trace.addressSpaceEnd(), config_.mediaCache);
        media_cache_layer = mc.get();
        layer = std::move(mc);
    } else {
        layer = std::make_unique<ConventionalLayer>();
    }

    disk::DiskHead head;
    const disk::SeekTimeModel time_model(config_.seekTime);

    std::optional<Defragmenter> defrag;
    if (config_.defrag && relocate)
        defrag.emplace(*config_.defrag);

    std::optional<Prefetcher> prefetch;
    if (config_.prefetch)
        prefetch.emplace(*config_.prefetch);

    std::optional<SelectiveCache> cache;
    if (config_.cache)
        cache.emplace(*config_.cache);

    auto do_access = [&](IoEvent &event, const SectorExtent &extent,
                         trace::IoType type) {
        const disk::SeekInfo info = head.access(extent, type);
        event.mediaBytes += extent.bytes();
        if (info.seeked) {
            event.seeks.push_back(info);
            if (type == trace::IoType::Read)
                ++result.readSeeks;
            else
                ++result.writeSeeks;
            result.seekTimeSec +=
                time_model.seekSeconds(info.distanceBytes);
        }
        if (type == trace::IoType::Read)
            result.mediaReadBytes += extent.bytes();
        else
            result.mediaWriteBytes += extent.bytes();
    };

    std::uint64_t op_index = 0;
    for (const auto &record : trace) {
        IoEvent event;
        event.opIndex = op_index++;
        event.record = record;

        if (record.isWrite()) {
            ++result.writes;
            result.hostWriteBytes += record.extent.bytes();
            event.segments = layer->placeWrite(record.extent);
            for (const auto &segment : event.segments)
                do_access(event, segment.physical(),
                          trace::IoType::Write);
        } else {
            ++result.reads;
            event.segments = mergePhysicallyContiguous(
                layer->translateRead(record.extent));
            const bool fragmented = event.segments.size() >= 2;
            if (fragmented) {
                ++result.fragmentedReads;
                result.readFragments += event.segments.size();
            }

            for (const auto &segment : event.segments) {
                const SectorExtent physical = segment.physical();

                // Algorithm 3: fragments of fragmented reads may be
                // served from the selective RAM cache.
                if (cache && fragmented && cache->lookup(physical)) {
                    ++event.cacheHits;
                    ++result.cacheHits;
                    continue;
                }
                if (cache && fragmented)
                    ++result.cacheMisses;

                // The drive buffer is consulted for every read; it
                // is only populated by look-ahead-behind fetches.
                if (prefetch && prefetch->lookup(physical)) {
                    ++event.prefetchHits;
                    ++result.prefetchHits;
                    continue;
                }

                // Media access, possibly widened by the prefetcher
                // (Algorithm 2 fetches around fragments only).
                SectorExtent region = physical;
                if (prefetch && fragmented)
                    region = prefetch->fetchRegion(physical);
                do_access(event, region, trace::IoType::Read);
                if (prefetch && fragmented)
                    prefetch->admit(region);
                if (cache && fragmented)
                    cache->admit(physical);
            }

            // Algorithm 1: write back heavily fragmented ranges at
            // the log head, paying one extra (write) seek.
            if (defrag &&
                defrag->onRead(record.extent, event.segments.size())) {
                event.defragSegments = relocate(record.extent);
                event.defragRewrite = true;
                ++result.defragRewrites;
                result.defragBytes += record.extent.bytes();
                for (const auto &segment : event.defragSegments)
                    do_access(event, segment.physical(),
                              trace::IoType::Write);
            }
        }

        // Background cleaning owed by the layer (media-cache
        // merges, log garbage collection). Cleaning traffic is
        // accounted separately from host-visible seeks.
        for (const MediaAccess &access : layer->maintenance()) {
            const disk::SeekInfo info =
                head.access(access.physical, access.type);
            if (info.seeked) {
                ++result.cleaningSeeks;
                ++event.cleaningSeeks;
                result.seekTimeSec +=
                    time_model.seekSeconds(info.distanceBytes);
            }
            if (access.type == trace::IoType::Read)
                result.cleaningReadBytes += access.physical.bytes();
            else
                result.cleaningWriteBytes += access.physical.bytes();
        }
        if (media_cache_layer)
            result.cleaningMerges = media_cache_layer->mergeCount();
        if (finite_layer)
            result.cleaningMerges = finite_layer->cleanings();

        for (auto *observer : observers_)
            observer->onEvent(event);
    }

    result.staticFragments = layer->staticFragmentCount();
    return result;
}

std::pair<SimResult, SimResult>
runWithBaseline(const trace::Trace &trace, const SimConfig &ls_config,
                const std::vector<SimObserver *> &observers)
{
    SimConfig baseline_config;
    baseline_config.translation = TranslationKind::Conventional;
    baseline_config.seekTime = ls_config.seekTime;

    Simulator baseline(baseline_config);
    Simulator log_structured(ls_config);
    for (SimObserver *observer : observers) {
        baseline.addObserver(observer);
        log_structured.addObserver(observer);
    }
    return {baseline.run(trace), log_structured.run(trace)};
}

double
seekAmplification(const SimResult &baseline, const SimResult &ls)
{
    if (baseline.totalSeeks() == 0)
        return 0.0;
    return static_cast<double>(ls.totalSeeks()) /
           static_cast<double>(baseline.totalSeeks());
}

} // namespace logseek::stl
