/**
 * @file
 * Conventional update-in-place translation (the paper's NoLS
 * baseline): physical address equals logical address, always.
 */

#ifndef LOGSEEK_STL_CONVENTIONAL_H
#define LOGSEEK_STL_CONVENTIONAL_H

#include "stl/translation_layer.h"

namespace logseek::stl
{

/**
 * Identity translation. Reads and writes go to the sectors named by
 * their LBAs, as on a conventional (CMR) drive; the written space is
 * never fragmented.
 */
class ConventionalLayer : public TranslationLayer
{
  public:
    void translateReadInto(const SectorExtent &extent,
                           SegmentBuffer &out) const override;

    void placeWriteInto(const SectorExtent &extent,
                        SegmentBuffer &out) override;

    void translateReadBatchInto(std::span<const SectorExtent> extents,
                                SegmentBufferBatch &out)
        const override;

    void placeWriteBatchInto(std::span<const SectorExtent> extents,
                             SegmentBufferBatch &out) override;

    std::size_t staticFragmentCount() const override { return 0; }

    std::string name() const override { return "conventional"; }
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_CONVENTIONAL_H
