/**
 * @file
 * Abstract block translation layer (paper §I-II).
 *
 * A translation layer provides the rewritable LBA abstraction on top
 * of the physical medium. The simulator asks it where reads must go
 * (translateRead) and where writes land (placeWrite); the two
 * implementations are the conventional update-in-place layer (the
 * paper's NoLS baseline) and the log-structured layer with a write
 * frontier (LS).
 */

#ifndef LOGSEEK_STL_TRANSLATION_LAYER_H
#define LOGSEEK_STL_TRANSLATION_LAYER_H

#include <span>
#include <string>
#include <vector>

#include "stl/extent_map.h"
#include "stl/io_batch.h"
#include "stl/segment_journal.h"
#include "trace/record.h"
#include "util/extent.h"

namespace logseek::stl
{

/**
 * One background media access owed by a translation layer —
 * cleaning reads/writes from media-cache merges or log garbage
 * collection. The simulator plays these through the disk head and
 * accounts them separately from host-visible traffic.
 */
struct MediaAccess
{
    SectorExtent physical;
    trace::IoType type = trace::IoType::Read;
};

/** Translation layer interface. */
class TranslationLayer
{
  public:
    virtual ~TranslationLayer() = default;

    /**
     * Resolve a logical read into physical segments in LBA order,
     * clearing `out` and filling it with the result. Does not change
     * translation state. This is the replay hot path: callers reuse
     * one SegmentBuffer across requests, so steady state performs no
     * heap allocation.
     */
    virtual void translateReadInto(const SectorExtent &extent,
                                   SegmentBuffer &out) const = 0;

    /**
     * Choose the physical placement for a logical write and update
     * the translation state, clearing `out` and filling it with the
     * placed segments (a single segment for most implementations).
     */
    virtual void placeWriteInto(const SectorExtent &extent,
                                SegmentBuffer &out) = 0;

    /**
     * Batched read translation: resolve every extent of a record
     * run in one virtual call, appending each record's segments to
     * `out` (cleared first) in record order. Semantically exactly a
     * loop over translateReadInto — the scalar call is the
     * documented fallback, and the base implementation is that loop
     * — but the four concrete layers override it natively so a
     * batch costs one virtual dispatch instead of one per record.
     * Does not change translation state.
     */
    virtual void
    translateReadBatchInto(std::span<const SectorExtent> extents,
                           SegmentBufferBatch &out) const;

    /**
     * Batched write placement: place every extent of a write run in
     * order, appending each record's placed segments to `out`
     * (cleared first). Semantically a loop over placeWriteInto with
     * no maintenance() interleaved — callers that owe per-record
     * maintenance (see hasMaintenance()) must use the scalar call.
     */
    virtual void
    placeWriteBatchInto(std::span<const SectorExtent> extents,
                        SegmentBufferBatch &out);

    /**
     * True when the layer owes background work via maintenance()
     * and must therefore be driven record-at-a-time for writes.
     * Layers returning false guarantee maintenance() is empty, so
     * the replay engine can skip the call entirely.
     */
    virtual bool hasMaintenance() const { return false; }

    /**
     * Allocating convenience wrapper around translateReadInto
     * (tests, tools, one-off queries).
     */
    std::vector<Segment> translateRead(const SectorExtent &extent) const;

    /** Allocating convenience wrapper around placeWriteInto. */
    std::vector<Segment> placeWrite(const SectorExtent &extent);

    /**
     * Static fragmentation: the number of physically contiguous
     * runs the written LBA space is currently split into.
     */
    virtual std::size_t staticFragmentCount() const = 0;

    /** Human-readable layer name. */
    virtual std::string name() const = 0;

    /**
     * Background work owed after the last request (cleaning /
     * merging). Called by the simulator once per host request;
     * layers without background work return nothing.
     */
    virtual std::vector<MediaAccess> maintenance() { return {}; }

    /**
     * Attach the durable metadata journal: from now on every
     * translation-state mutation (placement, reclaim, merge) is
     * recorded as one epoch frame. Not owned; null detaches. The
     * conventional layer keeps the default no-op — identity
     * placement has no state to lose.
     */
    virtual void attachJournal(SegmentJournal *journal)
    {
        (void)journal;
    }

    /**
     * Crash recovery: rebuild the translation state by scanning a
     * (possibly torn) journal image — SMORE-style log-scan mount.
     * Must be called on a freshly constructed layer; replays the
     * scan's consistent epoch prefix and restores the write
     * position recorded with the last epoch. The default (identity
     * layers) applies nothing but still reports the scan, so a
     * caller can see the damage tally for any layer. Records the
     * mount duration in the mount_latency_ns histogram.
     */
    virtual MountStats mountFromJournal(const SegmentJournal &journal);
};

/**
 * Merge consecutive segments whose physical runs are contiguous.
 * Translation can produce logically split but physically adjacent
 * segments (e.g. an identity hole next to an identity-placed run);
 * the device would serve those with a single sequential access, so
 * the simulator merges them before seek accounting. The merged
 * segment is marked mapped if any constituent was mapped.
 */
std::vector<Segment>
mergePhysicallyContiguous(std::vector<Segment> segments);

/**
 * In-place, allocation-free variant of mergePhysicallyContiguous
 * for the replay hot path: compacts `segments` so physically and
 * logically adjacent runs are merged, preserving order.
 */
void mergePhysicallyContiguousInPlace(SegmentBuffer &segments);

} // namespace logseek::stl

#endif // LOGSEEK_STL_TRANSLATION_LAYER_H
