/**
 * @file
 * Abstract block translation layer (paper §I-II).
 *
 * A translation layer provides the rewritable LBA abstraction on top
 * of the physical medium. The simulator asks it where reads must go
 * (translateRead) and where writes land (placeWrite); the two
 * implementations are the conventional update-in-place layer (the
 * paper's NoLS baseline) and the log-structured layer with a write
 * frontier (LS).
 */

#ifndef LOGSEEK_STL_TRANSLATION_LAYER_H
#define LOGSEEK_STL_TRANSLATION_LAYER_H

#include <string>
#include <vector>

#include "stl/extent_map.h"
#include "trace/record.h"
#include "util/extent.h"

namespace logseek::stl
{

/**
 * One background media access owed by a translation layer —
 * cleaning reads/writes from media-cache merges or log garbage
 * collection. The simulator plays these through the disk head and
 * accounts them separately from host-visible traffic.
 */
struct MediaAccess
{
    SectorExtent physical;
    trace::IoType type = trace::IoType::Read;
};

/** Translation layer interface. */
class TranslationLayer
{
  public:
    virtual ~TranslationLayer() = default;

    /**
     * Resolve a logical read into physical segments in LBA order.
     * Does not change translation state.
     */
    virtual std::vector<Segment>
    translateRead(const SectorExtent &extent) const = 0;

    /**
     * Choose the physical placement for a logical write and update
     * the translation state. Returns the placed segments (a single
     * segment for both implementations here).
     */
    virtual std::vector<Segment>
    placeWrite(const SectorExtent &extent) = 0;

    /**
     * Static fragmentation: the number of physically contiguous
     * runs the written LBA space is currently split into.
     */
    virtual std::size_t staticFragmentCount() const = 0;

    /** Human-readable layer name. */
    virtual std::string name() const = 0;

    /**
     * Background work owed after the last request (cleaning /
     * merging). Called by the simulator once per host request;
     * layers without background work return nothing.
     */
    virtual std::vector<MediaAccess> maintenance() { return {}; }
};

/**
 * Merge consecutive segments whose physical runs are contiguous.
 * Translation can produce logically split but physically adjacent
 * segments (e.g. an identity hole next to an identity-placed run);
 * the device would serve those with a single sequential access, so
 * the simulator merges them before seek accounting. The merged
 * segment is marked mapped if any constituent was mapped.
 */
std::vector<Segment>
mergePhysicallyContiguous(std::vector<Segment> segments);

} // namespace logseek::stl

#endif // LOGSEEK_STL_TRANSLATION_LAYER_H
