/**
 * @file
 * Hot/cold placement-stream classifier driven by block-invalidation
 * -time inference.
 *
 * Separating Data via Block Invalidation Time Inference (FAST '22)
 * observes that a block's *invalidation time* — how long until it is
 * overwritten — is the quantity a cleaner actually cares about, and
 * that it can be inferred online: a block's last update interval
 * predicts its next one. The router keeps a decayed update-interval
 * estimate per LBA bucket and classifies each host write into one of
 * N placement streams: short inferred intervals (hot, soon-dead
 * data) are separated from long ones (cold, long-lived data), so
 * segments fill with data that dies together and victims are either
 * mostly dead (hot streams) or left alone (cold streams).
 *
 * Everything is a deterministic function of the write sequence — a
 * logical clock ticks once per routed write, intervals are measured
 * in ticks, and the decayed estimates use integer EWMA arithmetic —
 * so replays are byte-identical across jobs, shards and resumes.
 */

#ifndef LOGSEEK_STL_GC_STREAM_ROUTER_H
#define LOGSEEK_STL_GC_STREAM_ROUTER_H

#include <cstdint>
#include <unordered_map>

#include "util/units.h"

namespace logseek::stl::gc
{

/** Tuning knobs of the block-invalidation-time inference. */
struct StreamRouterConfig
{
    /**
     * LBA bucket granularity in sectors: writes whose start sectors
     * fall in the same bucket share one update-interval estimate.
     * Coarser buckets cost less memory and generalize across
     * neighbours; finer buckets track per-extent behaviour.
     */
    SectorCount bucketSectors = 64;
};

/**
 * Classifies host writes into [0, streams) where stream 0 is the
 * hottest (shortest inferred invalidation time) and streams-1 the
 * coldest. First-touch writes — no interval history — go cold, as
 * do writes whose decayed interval estimate exceeds the decayed
 * global mean; the bands in between split geometrically.
 */
class StreamRouter
{
  public:
    /** @param streams Placement stream count, in [1, 8]. */
    explicit StreamRouter(std::uint32_t streams,
                          const StreamRouterConfig &config = {});

    /**
     * Classify one host write and advance the logical clock. Every
     * bucket the extent spans has its interval estimate refreshed;
     * the first bucket's estimate decides the stream.
     */
    std::uint32_t route(Lba lba, SectorCount count);

    std::uint32_t streams() const { return streams_; }

    /** The coldest stream; cleaning re-appends belong here. */
    std::uint32_t
    coldestStream() const
    {
        return streams_ - 1;
    }

    /** Logical writes routed so far. */
    std::uint64_t clock() const { return clock_; }

    /** Decayed mean update interval across all buckets (ticks). */
    std::uint64_t meanInterval() const { return meanInterval_; }

  private:
    struct Bucket
    {
        /** Logical tick of the bucket's last write. */
        std::uint64_t lastWrite = 0;

        /** Decayed update-interval estimate (0 = one write seen). */
        std::uint64_t interval = 0;
    };

    std::uint32_t streams_;
    StreamRouterConfig config_;
    std::uint64_t clock_ = 0;
    std::uint64_t meanInterval_ = 0;
    std::unordered_map<std::uint64_t, Bucket> buckets_;
};

} // namespace logseek::stl::gc

#endif // LOGSEEK_STL_GC_STREAM_ROUTER_H
