/**
 * @file
 * Pluggable garbage-collection policies for the finite log.
 *
 * The finite log's cleaner has two decisions: *when* to clean
 * (trigger/target hysteresis over the free-segment count) and
 * *which* closed segment to reclaim. Both live behind
 * CleaningPolicy so the layer's mechanics — moving live extents to
 * the frontier, journaling the reclaim, liveness bookkeeping — stay
 * in one place while the selection economics vary:
 *
 *  - greedy: the segment with the least live data, the layer's
 *    historical behaviour, pinned byte-identical by a differential
 *    regression test against the preserved reference cleaner;
 *  - cost-benefit: Sprite-LFS scoring age x (1-u)/(1+u), which
 *    prefers stable ("cold") fragmented segments over just-filled
 *    ones and lowers write amplification under hot/cold skew;
 *  - zone-granular: SMORE-style whole-zone reclamation that streams
 *    the victim zone in one sequential read (one seek instead of
 *    one per live extent), rewrites the live data at the frontier
 *    and resets the zone.
 *
 * Policies are pure selectors over a read-only SegmentStateView;
 * they mutate nothing and draw no entropy, so every replay remains
 * byte-identical across jobs, shards and checkpoint/resume.
 */

#ifndef LOGSEEK_STL_GC_CLEANING_POLICY_H
#define LOGSEEK_STL_GC_CLEANING_POLICY_H

#include <cstdint>
#include <memory>
#include <optional>

#include "stl/gc/stream_router.h"
#include "util/units.h"

namespace logseek::stl::gc
{

/** Victim-selection strategy of the finite log's cleaner. */
enum class CleaningPolicyKind
{
    Greedy,
    CostBenefit,
    ZoneGranular,
};

/** Stable lowercase policy name ("greedy", "cost-benefit", ...). */
const char *toString(CleaningPolicyKind kind);

/** GC configuration carried inside FiniteLogConfig. */
struct GcConfig
{
    CleaningPolicyKind policy = CleaningPolicyKind::Greedy;

    /** Placement streams (1 = legacy single-frontier log; 2 =
     *  hot/cold separation). Each stream fills its own open
     *  segment; cleaning re-appends go to the coldest stream. */
    std::uint32_t streams = 1;

    /** Block-invalidation-time inference knobs (streams > 1). */
    StreamRouterConfig router;
};

/**
 * Read-only view of the log's per-segment state a policy selects
 * victims from. Ticks are a logical clock advanced once per append,
 * giving age without wall time.
 */
class SegmentStateView
{
  public:
    virtual ~SegmentStateView() = default;

    virtual std::uint32_t segmentCount() const = 0;
    virtual SectorCount segmentSectors() const = 0;
    virtual SectorCount segmentLive(std::uint32_t i) const = 0;
    virtual bool segmentFree(std::uint32_t i) const = 0;

    /** True when i is some stream's open segment (never a victim). */
    virtual bool segmentOpen(std::uint32_t i) const = 0;

    /** Logical tick of the last write into i (0 = never written). */
    virtual std::uint64_t segmentLastWrite(std::uint32_t i) const = 0;

    /** Current logical tick. */
    virtual std::uint64_t now() const = 0;
};

/** The victim-selection + hysteresis interface. */
class CleaningPolicy
{
  public:
    virtual ~CleaningPolicy() = default;

    virtual const char *name() const = 0;

    /** Hysteresis trigger: should a cleaning pass start? */
    virtual bool
    startCleaning(std::uint32_t free_segments,
                  std::uint32_t reserve_segments) const
    {
        return free_segments <= reserve_segments;
    }

    /** Hysteresis target: should the running pass keep reclaiming? */
    virtual bool
    continueCleaning(std::uint32_t free_segments,
                     std::uint32_t target_segments) const
    {
        return free_segments < target_segments;
    }

    /**
     * Pick the next victim, or nullopt when no closed segment can
     * make progress (everything is fully live). The caller decides
     * whether nullopt is benign (above the reserve) or overcommit.
     */
    virtual std::optional<std::uint32_t>
    selectVictim(const SegmentStateView &view) const = 0;

    /**
     * True when reclamation streams the whole victim zone as one
     * sequential read instead of seeking to each live extent.
     */
    virtual bool wholeZoneRead() const { return false; }
};

/** Policy factory; never returns null. */
std::unique_ptr<CleaningPolicy>
makeCleaningPolicy(CleaningPolicyKind kind);

} // namespace logseek::stl::gc

#endif // LOGSEEK_STL_GC_CLEANING_POLICY_H
