#include "cleaning_policy.h"

#include "util/logging.h"

namespace logseek::stl::gc
{

const char *
toString(CleaningPolicyKind kind)
{
    switch (kind) {
    case CleaningPolicyKind::Greedy:
        return "greedy";
    case CleaningPolicyKind::CostBenefit:
        return "cost-benefit";
    case CleaningPolicyKind::ZoneGranular:
        return "zone-granular";
    }
    fatal("toString: unknown cleaning policy kind");
}

namespace
{

/**
 * Historical behaviour of FiniteLogStructuredLayer: the closed
 * segment with the least live data, lowest index breaking ties, and
 * nullopt once even the best candidate is fully live. The loop shape
 * (strict <, full-live sentinel) is pinned by a differential test
 * against ReferenceFiniteLog — change nothing here without updating
 * that pin.
 */
class GreedyPolicy final : public CleaningPolicy
{
  public:
    const char *name() const override { return "greedy"; }

    std::optional<std::uint32_t>
    selectVictim(const SegmentStateView &view) const override
    {
        std::uint32_t victim = 0;
        SectorCount best = view.segmentSectors();
        bool found = false;
        for (std::uint32_t i = 0; i < view.segmentCount(); ++i) {
            if (view.segmentFree(i) || view.segmentOpen(i))
                continue;
            if (view.segmentLive(i) < best) {
                best = view.segmentLive(i);
                victim = i;
                found = true;
            }
        }
        if (!found || best >= view.segmentSectors())
            return std::nullopt;
        return victim;
    }
};

/**
 * Sprite-LFS cost-benefit cleaning: score each closed segment by
 * age x (1 - u) / (1 + u), where u is the live fraction and age the
 * logical ticks since the segment's last write. Unlike greedy this
 * will reclaim a moderately utilized segment that has been stable
 * for a long time in preference to a just-written emptier one — the
 * stable one's survivors are likely cold and won't be moved again,
 * which is what lowers write amplification under hot/cold skew.
 *
 * Scoring is pure 64-bit integer arithmetic: benefit/cost =
 * age * (S - live) / (S + live) compared cross-multiplied so no
 * division rounding enters the victim choice.
 */
class CostBenefitPolicy final : public CleaningPolicy
{
  public:
    const char *name() const override { return "cost-benefit"; }

    std::optional<std::uint32_t>
    selectVictim(const SegmentStateView &view) const override
    {
        const SectorCount sectors = view.segmentSectors();
        const std::uint64_t now = view.now();
        std::uint32_t victim = 0;
        // Score numerator/denominator of the current best; compare
        // candidates by cross-multiplication to stay exact.
        unsigned __int128 best_num = 0;
        std::uint64_t best_den = 1;
        bool found = false;
        for (std::uint32_t i = 0; i < view.segmentCount(); ++i) {
            if (view.segmentFree(i) || view.segmentOpen(i))
                continue;
            const SectorCount live = view.segmentLive(i);
            if (live >= sectors)
                continue; // fully live: reclaiming frees nothing
            const std::uint64_t age =
                now - view.segmentLastWrite(i) + 1;
            const unsigned __int128 num =
                static_cast<unsigned __int128>(age) *
                (sectors - live);
            const std::uint64_t den = sectors + live;
            // num/den > best_num/best_den, lowest index on ties.
            if (!found || num * best_den > best_num * den) {
                best_num = num;
                best_den = den;
                victim = i;
                found = true;
            }
        }
        if (!found)
            return std::nullopt;
        return victim;
    }
};

/**
 * SMORE-style zone-granular reclamation. Victim choice is greedy
 * over whole zones (segments are zone-sized in the finite log), but
 * the reclaim I/O pattern differs: the whole victim zone is streamed
 * in one sequential read — one seek — rather than seeking to each
 * live extent, then the survivors are rewritten at the frontier and
 * the zone is RESET. Ties on live data break toward the older zone,
 * then the lower index, mirroring SMORE's preference for stable
 * zones.
 */
class ZoneGranularPolicy final : public CleaningPolicy
{
  public:
    const char *name() const override { return "zone-granular"; }

    std::optional<std::uint32_t>
    selectVictim(const SegmentStateView &view) const override
    {
        std::uint32_t victim = 0;
        SectorCount best = view.segmentSectors();
        std::uint64_t best_age = 0;
        bool found = false;
        for (std::uint32_t i = 0; i < view.segmentCount(); ++i) {
            if (view.segmentFree(i) || view.segmentOpen(i))
                continue;
            const SectorCount live = view.segmentLive(i);
            if (live >= view.segmentSectors())
                continue;
            const std::uint64_t age =
                view.now() - view.segmentLastWrite(i);
            if (!found || live < best ||
                (live == best && age > best_age)) {
                best = live;
                best_age = age;
                victim = i;
                found = true;
            }
        }
        if (!found)
            return std::nullopt;
        return victim;
    }

    bool wholeZoneRead() const override { return true; }
};

} // namespace

std::unique_ptr<CleaningPolicy>
makeCleaningPolicy(CleaningPolicyKind kind)
{
    switch (kind) {
    case CleaningPolicyKind::Greedy:
        return std::make_unique<GreedyPolicy>();
    case CleaningPolicyKind::CostBenefit:
        return std::make_unique<CostBenefitPolicy>();
    case CleaningPolicyKind::ZoneGranular:
        return std::make_unique<ZoneGranularPolicy>();
    }
    fatal("makeCleaningPolicy: unknown cleaning policy kind");
}

} // namespace logseek::stl::gc
