#include "stream_router.h"

#include "util/logging.h"

namespace logseek::stl::gc
{

StreamRouter::StreamRouter(std::uint32_t streams,
                           const StreamRouterConfig &config)
    : streams_(streams), config_(config)
{
    panicIf(streams_ < 1 || streams_ > 8,
            "StreamRouter: stream count must be in [1, 8]");
    panicIf(config_.bucketSectors == 0,
            "StreamRouter: bucket granularity must be at least one "
            "sector");
}

std::uint32_t
StreamRouter::route(Lba lba, SectorCount count)
{
    const std::uint64_t tick = ++clock_;
    if (streams_ == 1)
        return 0;

    // Refresh every bucket the extent spans; remember the first
    // bucket's state, which decides the stream.
    const std::uint64_t first = lba / config_.bucketSectors;
    const std::uint64_t last =
        (lba + count - 1) / config_.bucketSectors;
    bool first_seen = false;
    std::uint64_t first_interval = 0;
    for (std::uint64_t b = first; b <= last; ++b) {
        auto [it, inserted] = buckets_.try_emplace(b);
        Bucket &bucket = it->second;
        if (inserted) {
            bucket.lastWrite = tick;
            continue;
        }
        const std::uint64_t interval = tick - bucket.lastWrite;
        bucket.lastWrite = tick;
        // Per-bucket EWMA (alpha = 1/4) over this bucket's update
        // intervals; global EWMA (alpha = 1/16) tracks the whole
        // workload's re-write tempo and sets the band thresholds.
        bucket.interval =
            bucket.interval == 0
                ? interval
                : (3 * bucket.interval + interval) / 4;
        meanInterval_ = meanInterval_ == 0
                            ? interval
                            : (15 * meanInterval_ + interval) / 16;
        if (b == first) {
            first_seen = true;
            first_interval = bucket.interval;
        }
    }

    // First touch: no invalidation-time evidence yet, so the block
    // is presumed long-lived and goes to the coldest stream.
    if (!first_seen)
        return coldestStream();

    // Geometric bands under the global mean: stream k takes
    // estimates up to mean >> (streams - 2 - k), so stream 0 holds
    // the fastest-invalidating blocks and anything at or above the
    // mean tempo stays cold.
    for (std::uint32_t k = 0; k + 1 < streams_; ++k) {
        const std::uint64_t threshold =
            meanInterval_ >> (streams_ - 2 - k);
        if (first_interval <= threshold)
            return k;
    }
    return coldestStream();
}

} // namespace logseek::stl::gc
