#include "translation_layer.h"

namespace logseek::stl
{

std::vector<Segment>
mergePhysicallyContiguous(std::vector<Segment> segments)
{
    if (segments.size() < 2)
        return segments;
    std::vector<Segment> merged;
    merged.reserve(segments.size());
    merged.push_back(segments.front());
    for (std::size_t i = 1; i < segments.size(); ++i) {
        Segment &last = merged.back();
        const Segment &next = segments[i];
        const bool physically_adjacent =
            last.pba + last.logical.count == next.pba;
        const bool logically_adjacent =
            last.logical.end() == next.logical.start;
        if (physically_adjacent && logically_adjacent) {
            last.logical.count += next.logical.count;
            last.mapped = last.mapped || next.mapped;
        } else {
            merged.push_back(next);
        }
    }
    return merged;
}

} // namespace logseek::stl
