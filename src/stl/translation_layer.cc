#include "translation_layer.h"

#include <utility>

#include "telemetry/metrics.h"

namespace logseek::stl
{

MountStats
mountStatsFrom(const JournalScan &scan)
{
    MountStats stats;
    stats.epochsApplied = scan.records.size();
    stats.segmentsScanned = scan.segmentsScanned;
    stats.tornTails = scan.tornTail ? 1 : 0;
    stats.damagedFrames = scan.damagedFrames;
    stats.truncatedEpochs = scan.truncatedEpochs;
    return stats;
}

MountStats
TranslationLayer::mountFromJournal(const SegmentJournal &journal)
{
    // Identity layers have no state to rebuild; the scan still
    // runs so the caller sees the metadata region's damage tally.
    const telemetry::ScopedTimer timer(
        &telemetry::Registry::global().histogram(
            "mount_latency_ns"));
    MountStats stats = mountStatsFrom(scanJournal(journal.image()));
    stats.epochsApplied = 0;
    return stats;
}

void
TranslationLayer::translateReadBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
    const
{
    // Documented fallback: the scalar call per record, copied into
    // the flat batch. Concrete layers override this with a native
    // append that skips the per-record virtual dispatch and copy.
    out.clear();
    SegmentBuffer scratch;
    for (const SectorExtent &extent : extents) {
        translateReadInto(extent, scratch);
        for (const Segment &segment : scratch)
            out.flat().push(segment);
        out.endRecord();
    }
}

void
TranslationLayer::placeWriteBatchInto(
    std::span<const SectorExtent> extents, SegmentBufferBatch &out)
{
    out.clear();
    SegmentBuffer scratch;
    for (const SectorExtent &extent : extents) {
        placeWriteInto(extent, scratch);
        for (const Segment &segment : scratch)
            out.flat().push(segment);
        out.endRecord();
    }
}

std::vector<Segment>
TranslationLayer::translateRead(const SectorExtent &extent) const
{
    SegmentBuffer out;
    translateReadInto(extent, out);
    return std::move(out).take();
}

std::vector<Segment>
TranslationLayer::placeWrite(const SectorExtent &extent)
{
    SegmentBuffer out;
    placeWriteInto(extent, out);
    return std::move(out).take();
}

std::vector<Segment>
mergePhysicallyContiguous(std::vector<Segment> segments)
{
    if (segments.size() < 2)
        return segments;
    std::vector<Segment> merged;
    merged.reserve(segments.size());
    merged.push_back(segments.front());
    for (std::size_t i = 1; i < segments.size(); ++i) {
        Segment &last = merged.back();
        const Segment &next = segments[i];
        const bool physically_adjacent =
            last.pba + last.logical.count == next.pba;
        const bool logically_adjacent =
            last.logical.end() == next.logical.start;
        if (physically_adjacent && logically_adjacent) {
            last.logical.count += next.logical.count;
            last.mapped = last.mapped || next.mapped;
        } else {
            merged.push_back(next);
        }
    }
    return merged;
}

void
mergePhysicallyContiguousInPlace(SegmentBuffer &segments)
{
    if (segments.size() < 2)
        return;
    std::size_t out = 0;
    for (std::size_t i = 1; i < segments.size(); ++i) {
        Segment &last = segments[out];
        const Segment &next = segments[i];
        const bool physically_adjacent =
            last.pba + last.logical.count == next.pba;
        const bool logically_adjacent =
            last.logical.end() == next.logical.start;
        if (physically_adjacent && logically_adjacent) {
            last.logical.count += next.logical.count;
            last.mapped = last.mapped || next.mapped;
        } else {
            segments[++out] = next;
        }
    }
    segments.truncate(out + 1);
}

} // namespace logseek::stl
