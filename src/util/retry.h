/**
 * @file
 * Bounded retry with exponential backoff and deterministic jitter.
 *
 * Transient faults — an NFS blip while loading a trace, a busy disk
 * failing a write — deserve a second attempt; corrupt bytes do not.
 * RetryPolicy says how many attempts a fallible operation gets and
 * how long to back off between them; isRetryable() classifies which
 * Status codes a retry can plausibly fix. Jitter is drawn from the
 * caller's seeded Rng so sweep results stay reproducible: equal
 * seeds give equal backoff schedules.
 */

#ifndef LOGSEEK_UTIL_RETRY_H
#define LOGSEEK_UTIL_RETRY_H

#include <chrono>
#include <functional>
#include <string>

#include "util/cancellation.h"
#include "util/random.h"
#include "util/status.h"

namespace logseek
{

/** How often and how patiently to retry a fallible operation. */
struct RetryPolicy
{
    /** Total attempts including the first; 1 means no retry. */
    int maxAttempts = 1;

    /** Backoff before the first retry. */
    std::chrono::milliseconds initialBackoff{25};

    /** Growth factor per failed attempt. */
    double multiplier = 2.0;

    /** Upper bound on any single backoff. */
    std::chrono::milliseconds maxBackoff{2000};

    /**
     * Fraction of the backoff randomized: the delay is drawn
     * uniformly from [base*(1-jitter), base*(1+jitter)], then
     * clamped to maxBackoff. 0 disables jitter.
     */
    double jitter = 0.5;
};

/**
 * True for status codes a retry of the same operation can fix:
 * transient resource failures (Unavailable). Corruption, bad
 * arguments, deadline expiry and internal bugs are permanent.
 */
bool isRetryable(StatusCode code);

/**
 * The jittered backoff before retry number `attempt` (1-based: the
 * delay after the attempt-th failure). Deterministic given the Rng
 * state; never negative, never above policy.maxBackoff.
 */
std::chrono::milliseconds backoffDelay(const RetryPolicy &policy,
                                       int attempt, Rng &rng);

/**
 * One bounded-retry episode with correct attempt accounting.
 *
 * The subtlety RetrySession exists for: an attempt must be
 * reported the moment it begins, not when it completes. A loop
 * that counts attempts after the backoff silently drops the
 * in-flight attempt when a cancellation (deadline) fires
 * mid-backoff — telemetry then under-reports exactly the runs
 * that died retrying, which are the ones being debugged.
 * beginAttempt() therefore fires the listener immediately, and
 * backoff() merely reports whether the sleep completed; attempts()
 * always includes every attempt that started.
 *
 * Jitter draws come from the caller's seeded Rng, so equal seeds
 * give equal backoff schedules (wall-clock only; never results).
 */
class RetrySession
{
  public:
    /** Called at the start of attempt n (1-based). */
    using AttemptListener = std::function<void(int attempt)>;

    /**
     * @param policy Attempt budget and backoff shape.
     * @param rng Seeded stream for jitter; must outlive the
     *        session.
     * @param cancel Token observed during backoff sleeps.
     * @param on_attempt Optional listener fired by beginAttempt().
     */
    RetrySession(const RetryPolicy &policy, Rng &rng,
                 CancelToken cancel = {},
                 AttemptListener on_attempt = {});

    /**
     * Start the next attempt: records it and fires the listener
     * before any work happens. Returns the 1-based attempt number.
     */
    int beginAttempt();

    /** True when the attempt budget is spent. */
    bool
    exhausted() const
    {
        return attempts_ >= policy_.maxAttempts;
    }

    /** True when `code` is worth another attempt and budget
     *  remains. */
    bool
    shouldRetry(StatusCode code) const
    {
        return isRetryable(code) && !exhausted();
    }

    /**
     * Sleep the jittered backoff for the attempt that just failed.
     * Returns OK when the full delay elapsed; the token's typed
     * status (Cancelled/DeadlineExceeded, message context `what`)
     * when it fired mid-backoff. Either way the failed attempt has
     * already been counted.
     */
    Status backoff(const std::string &what);

    /** Attempts started so far, including any in flight. */
    int attempts() const { return attempts_; }

  private:
    RetryPolicy policy_;
    Rng &rng_;
    CancelToken cancel_;
    AttemptListener onAttempt_;
    int attempts_ = 0;
};

} // namespace logseek

#endif // LOGSEEK_UTIL_RETRY_H
