/**
 * @file
 * Bounded retry with exponential backoff and deterministic jitter.
 *
 * Transient faults — an NFS blip while loading a trace, a busy disk
 * failing a write — deserve a second attempt; corrupt bytes do not.
 * RetryPolicy says how many attempts a fallible operation gets and
 * how long to back off between them; isRetryable() classifies which
 * Status codes a retry can plausibly fix. Jitter is drawn from the
 * caller's seeded Rng so sweep results stay reproducible: equal
 * seeds give equal backoff schedules.
 */

#ifndef LOGSEEK_UTIL_RETRY_H
#define LOGSEEK_UTIL_RETRY_H

#include <chrono>

#include "util/random.h"
#include "util/status.h"

namespace logseek
{

/** How often and how patiently to retry a fallible operation. */
struct RetryPolicy
{
    /** Total attempts including the first; 1 means no retry. */
    int maxAttempts = 1;

    /** Backoff before the first retry. */
    std::chrono::milliseconds initialBackoff{25};

    /** Growth factor per failed attempt. */
    double multiplier = 2.0;

    /** Upper bound on any single backoff. */
    std::chrono::milliseconds maxBackoff{2000};

    /**
     * Fraction of the backoff randomized: the delay is drawn
     * uniformly from [base*(1-jitter), base*(1+jitter)], then
     * clamped to maxBackoff. 0 disables jitter.
     */
    double jitter = 0.5;
};

/**
 * True for status codes a retry of the same operation can fix:
 * transient resource failures (Unavailable). Corruption, bad
 * arguments, deadline expiry and internal bugs are permanent.
 */
bool isRetryable(StatusCode code);

/**
 * The jittered backoff before retry number `attempt` (1-based: the
 * delay after the attempt-th failure). Deterministic given the Rng
 * state; never negative, never above policy.maxBackoff.
 */
std::chrono::milliseconds backoffDelay(const RetryPolicy &policy,
                                       int attempt, Rng &rng);

} // namespace logseek

#endif // LOGSEEK_UTIL_RETRY_H
