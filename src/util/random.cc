#include "random.h"

#include <algorithm>
#include <cmath>

#include "logging.h"

namespace logseek
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextUint(std::uint64_t bound)
{
    panicIf(bound == 0, "Rng::nextUint: bound must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t value;
    do {
        value = (*this)();
    } while (value >= limit);
    return value % bound;
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    panicIf(lo > hi, "Rng::nextRange: lo > hi");
    if (lo == 0 && hi == max())
        return (*this)();
    return lo + nextUint(hi - lo + 1);
}

double
Rng::nextDouble()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

ZipfSampler::ZipfSampler(std::size_t n, double skew)
{
    panicIf(n == 0, "ZipfSampler: n must be >= 1");
    panicIf(skew < 0.0, "ZipfSampler: skew must be >= 0");
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t rank = 0; rank < n; ++rank) {
        total += 1.0 / std::pow(static_cast<double>(rank + 1), skew);
        cdf_[rank] = total;
    }
    for (auto &value : cdf_)
        value /= total;
    cdf_.back() = 1.0;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace logseek
