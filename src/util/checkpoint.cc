#include "checkpoint.h"

#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

// The slice-by-16 CRC kernel folds raw 32-bit loads into the
// state, which is only the IEEE byte-order-free CRC on a
// little-endian host; the project already pins this for the
// on-disk formats.
static_assert(std::endian::native == std::endian::little,
              "crc32 slice-by-16 kernel assumes little-endian");

namespace logseek
{

namespace
{

constexpr std::string_view kFrameMagic{"LCKP", 4};
constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 4;

void
putLe32(std::string &out, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(
            static_cast<char>((value >> (8 * i)) & 0xff));
}

std::uint32_t
getLe32(std::string_view bytes, std::size_t at)
{
    std::uint32_t value = 0;
    for (std::size_t i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(bytes[at + i]))
                 << (8 * i);
    return value;
}

/**
 * Lazily built slice-by-16 tables for the IEEE CRC-32 polynomial:
 * tables[0] is the classic byte-at-a-time table; tables[k] rolls a
 * byte through k additional zero bytes, so sixteen table lookups
 * advance the CRC by sixteen input bytes at once. Same polynomial,
 * same result, an order of magnitude more throughput — which
 * matters now that the CRC guards whole LSKC trace columns, not
 * just checkpoint frames.
 */
constexpr std::size_t kCrcSlices = 16;
using CrcTables =
    std::array<std::array<std::uint32_t, 256>, kCrcSlices>;

const CrcTables &
crcTables()
{
    static const CrcTables tables = [] {
        CrcTables t{};
        for (std::uint32_t n = 0; n < 256; ++n) {
            std::uint32_t c = n;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[0][n] = c;
        }
        for (std::uint32_t n = 0; n < 256; ++n) {
            std::uint32_t c = t[0][n];
            for (std::size_t k = 1; k < kCrcSlices; ++k) {
                c = t[0][c & 0xffu] ^ (c >> 8);
                t[k][n] = c;
            }
        }
        return t;
    }();
    return tables;
}

} // namespace

std::uint32_t
crc32(std::string_view bytes)
{
    Crc32 crc;
    crc.update(bytes);
    return crc.value();
}

void
Crc32::update(std::string_view bytes)
{
    const auto &t = crcTables();
    std::uint32_t crc = state_;
    const char *p = bytes.data();
    std::size_t n = bytes.size();
    while (n >= 16) {
        std::uint32_t w0;
        std::uint32_t w1;
        std::uint32_t w2;
        std::uint32_t w3;
        std::memcpy(&w0, p, 4);
        std::memcpy(&w1, p + 4, 4);
        std::memcpy(&w2, p + 8, 4);
        std::memcpy(&w3, p + 12, 4);
        w0 ^= crc;
        crc = t[15][w0 & 0xffu] ^ t[14][(w0 >> 8) & 0xffu] ^
              t[13][(w0 >> 16) & 0xffu] ^ t[12][w0 >> 24] ^
              t[11][w1 & 0xffu] ^ t[10][(w1 >> 8) & 0xffu] ^
              t[9][(w1 >> 16) & 0xffu] ^ t[8][w1 >> 24] ^
              t[7][w2 & 0xffu] ^ t[6][(w2 >> 8) & 0xffu] ^
              t[5][(w2 >> 16) & 0xffu] ^ t[4][w2 >> 24] ^
              t[3][w3 & 0xffu] ^ t[2][(w3 >> 8) & 0xffu] ^
              t[1][(w3 >> 16) & 0xffu] ^ t[0][w3 >> 24];
        p += 16;
        n -= 16;
    }
    for (; n > 0; ++p, --n)
        crc = t[0][(crc ^ static_cast<unsigned char>(*p)) &
                   0xffu] ^
              (crc >> 8);
    state_ = crc;
}

void
appendCheckpointFrame(std::string &out, std::string_view payload)
{
    out.append(kFrameMagic);
    putLe32(out, static_cast<std::uint32_t>(payload.size()));
    putLe32(out, crc32(payload));
    out.append(payload);
}

CheckpointLoad
parseCheckpoint(std::string_view bytes)
{
    CheckpointLoad out;
    std::size_t pos = 0;
    while (pos < bytes.size()) {
        const std::size_t frame = bytes.find(kFrameMagic, pos);
        if (frame == std::string_view::npos) {
            // Trailing bytes with no full frame start. If they are
            // a prefix of the magic, the file was cut inside the
            // magic itself — a torn tail, not corruption.
            const std::string_view tail = bytes.substr(pos);
            if (tail.size() < kFrameMagic.size() &&
                tail == kFrameMagic.substr(0, tail.size())) {
                out.tornTail = true;
            } else {
                ++out.damagedFrames;
            }
            out.bytesDropped += bytes.size() - pos;
            break;
        }
        if (frame > pos) {
            // Gap before the next recognizable frame — a frame
            // whose magic was corrupted.
            out.bytesDropped += frame - pos;
            ++out.damagedFrames;
        }
        if (bytes.size() - frame < kFrameHeaderBytes) {
            out.tornTail = true;
            out.bytesDropped += bytes.size() - frame;
            break;
        }
        const std::uint32_t length = getLe32(bytes, frame + 4);
        const std::uint32_t crc = getLe32(bytes, frame + 8);
        if (length > bytes.size() - frame - kFrameHeaderBytes) {
            // The frame runs past EOF. If another magic follows,
            // the length field was corrupt (resync there);
            // otherwise this is the torn tail of an interrupted
            // append.
            const std::size_t next =
                bytes.find(kFrameMagic, frame + 4);
            if (next == std::string_view::npos) {
                out.tornTail = true;
                out.bytesDropped += bytes.size() - frame;
                break;
            }
            ++out.damagedFrames;
            out.bytesDropped += next - frame;
            pos = next;
            continue;
        }
        const std::string_view payload =
            bytes.substr(frame + kFrameHeaderBytes, length);
        if (crc32(payload) != crc) {
            const std::size_t next =
                bytes.find(kFrameMagic, frame + 4);
            ++out.damagedFrames;
            if (next == std::string_view::npos) {
                out.bytesDropped += bytes.size() - frame;
                break;
            }
            out.bytesDropped += next - frame;
            pos = next;
            continue;
        }
        out.records.emplace_back(payload);
        pos = frame + kFrameHeaderBytes + length;
    }
    return out;
}

StatusOr<CheckpointLoad>
loadCheckpoint(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        const int saved_errno = errno;
        return notFoundError("cannot open checkpoint: " + path +
                             ": " + std::strerror(saved_errno));
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad())
        return unavailableError("cannot read checkpoint: " + path);
    return parseCheckpoint(bytes);
}

CheckpointWriter::CheckpointWriter(std::string path)
    : path_(std::move(path))
{
}

void
CheckpointWriter::seed(std::vector<std::string> records)
{
    std::lock_guard<std::mutex> lock(mutex_);
    records_ = std::move(records);
}

Status
CheckpointWriter::append(std::string payload)
{
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(std::move(payload));
    return publishLocked();
}

std::size_t
CheckpointWriter::recordCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_.size();
}

Status
CheckpointWriter::publishLocked()
{
    std::string image;
    for (const std::string &record : records_)
        appendCheckpointFrame(image, record);

    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream out(tmp,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            const int saved_errno = errno;
            return unavailableError(
                "cannot create checkpoint temp: " + tmp + ": " +
                std::strerror(saved_errno));
        }
        out.write(image.data(),
                  static_cast<std::streamsize>(image.size()));
        out.flush();
        if (!out)
            return unavailableError(
                "checkpoint write failed: " + tmp);
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        const int saved_errno = errno;
        return unavailableError(
            "cannot publish checkpoint: " + path_ + ": " +
            std::strerror(saved_errno));
    }
    return Status();
}

} // namespace logseek
