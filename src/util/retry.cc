#include "retry.h"

#include <algorithm>
#include <cmath>

namespace logseek
{

bool
isRetryable(StatusCode code)
{
    return code == StatusCode::Unavailable;
}

std::chrono::milliseconds
backoffDelay(const RetryPolicy &policy, int attempt, Rng &rng)
{
    if (attempt < 1)
        attempt = 1;
    const double cap =
        static_cast<double>(policy.maxBackoff.count());
    double base = static_cast<double>(
                      policy.initialBackoff.count()) *
                  std::pow(std::max(policy.multiplier, 1.0),
                           attempt - 1);
    base = std::min(base, cap);

    const double jitter =
        std::clamp(policy.jitter, 0.0, 1.0);
    double scaled = base;
    if (jitter > 0.0) {
        // Uniform in [1 - jitter, 1 + jitter], from the caller's
        // seeded stream so schedules are reproducible.
        const double factor =
            1.0 - jitter + 2.0 * jitter * rng.nextDouble();
        scaled = base * factor;
    }
    scaled = std::clamp(scaled, 0.0, cap);
    return std::chrono::milliseconds(
        static_cast<std::int64_t>(scaled));
}

} // namespace logseek
