#include "retry.h"

#include <algorithm>
#include <cmath>

namespace logseek
{

bool
isRetryable(StatusCode code)
{
    return code == StatusCode::Unavailable;
}

std::chrono::milliseconds
backoffDelay(const RetryPolicy &policy, int attempt, Rng &rng)
{
    if (attempt < 1)
        attempt = 1;
    const double cap =
        static_cast<double>(policy.maxBackoff.count());
    double base = static_cast<double>(
                      policy.initialBackoff.count()) *
                  std::pow(std::max(policy.multiplier, 1.0),
                           attempt - 1);
    base = std::min(base, cap);

    const double jitter =
        std::clamp(policy.jitter, 0.0, 1.0);
    double scaled = base;
    if (jitter > 0.0) {
        // Uniform in [1 - jitter, 1 + jitter], from the caller's
        // seeded stream so schedules are reproducible.
        const double factor =
            1.0 - jitter + 2.0 * jitter * rng.nextDouble();
        scaled = base * factor;
    }
    scaled = std::clamp(scaled, 0.0, cap);
    return std::chrono::milliseconds(
        static_cast<std::int64_t>(scaled));
}

RetrySession::RetrySession(const RetryPolicy &policy, Rng &rng,
                           CancelToken cancel,
                           AttemptListener on_attempt)
    : policy_(policy), rng_(rng), cancel_(std::move(cancel)),
      onAttempt_(std::move(on_attempt))
{
    if (policy_.maxAttempts < 1)
        policy_.maxAttempts = 1;
}

int
RetrySession::beginAttempt()
{
    ++attempts_;
    if (onAttempt_)
        onAttempt_(attempts_);
    return attempts_;
}

Status
RetrySession::backoff(const std::string &what)
{
    // Check before sleeping so a zero-length backoff still lets an
    // expired deadline fire between attempts.
    if (cancel_.cancelled())
        return cancel_.toStatus(what);
    const std::chrono::milliseconds delay =
        backoffDelay(policy_, attempts_, rng_);
    if (!sleepFor(delay, cancel_))
        return cancel_.toStatus(what);
    return Status();
}

} // namespace logseek
