/**
 * @file
 * Basic storage units and address types used throughout logseek.
 *
 * The simulator works in 512-byte sectors. Logical block addresses
 * (Lba) name sectors in the address space exposed to the host;
 * physical block addresses (Pba) name sectors on the (infinite)
 * physical medium of the disk model. Both are plain 64-bit integers;
 * the distinct aliases exist to keep interfaces self-documenting.
 */

#ifndef LOGSEEK_UTIL_UNITS_H
#define LOGSEEK_UTIL_UNITS_H

#include <cstdint>

namespace logseek
{

/** Logical block (sector) address, host-visible. */
using Lba = std::uint64_t;

/** Physical block (sector) address on the medium. */
using Pba = std::uint64_t;

/** A count of sectors. */
using SectorCount = std::uint64_t;

/** Bytes of a 512-byte sector. */
inline constexpr std::uint64_t kSectorBytes = 512;

/** Convenience byte multiples. */
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/** Round a byte count down to whole sectors. */
constexpr SectorCount
bytesToSectors(std::uint64_t bytes)
{
    return bytes / kSectorBytes;
}

/** Convert a sector count to bytes. */
constexpr std::uint64_t
sectorsToBytes(SectorCount sectors)
{
    return sectors * kSectorBytes;
}

/**
 * Signed distance in bytes between two sector addresses
 * (to - from), used for seek-length accounting.
 */
constexpr std::int64_t
sectorDistanceBytes(std::uint64_t from, std::uint64_t to)
{
    return (static_cast<std::int64_t>(to) -
            static_cast<std::int64_t>(from)) *
           static_cast<std::int64_t>(kSectorBytes);
}

} // namespace logseek

#endif // LOGSEEK_UTIL_UNITS_H
