#include "time_series.h"

#include <numeric>

#include "logging.h"

namespace logseek
{

BinnedSeries::BinnedSeries(std::uint64_t bin_width)
    : binWidth_(bin_width)
{
    panicIf(bin_width == 0, "BinnedSeries: bin width must be > 0");
}

void
BinnedSeries::add(std::uint64_t index, std::int64_t value)
{
    const auto bin = static_cast<std::size_t>(index / binWidth_);
    if (bin >= bins_.size())
        bins_.resize(bin + 1, 0);
    bins_[bin] += value;
}

std::int64_t
BinnedSeries::binValue(std::size_t i) const
{
    return i < bins_.size() ? bins_[i] : 0;
}

std::uint64_t
BinnedSeries::binLowerEdge(std::size_t i) const
{
    return static_cast<std::uint64_t>(i) * binWidth_;
}

std::int64_t
BinnedSeries::total() const
{
    return std::accumulate(bins_.begin(), bins_.end(),
                           std::int64_t{0});
}

BinnedSeries
difference(const BinnedSeries &a, const BinnedSeries &b)
{
    panicIf(a.binWidth() != b.binWidth(),
            "BinnedSeries difference: mismatched bin widths");
    BinnedSeries out(a.binWidth());
    const std::size_t n = std::max(a.binCount(), b.binCount());
    for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t delta = a.binValue(i) - b.binValue(i);
        if (delta != 0 || i + 1 == n)
            out.add(out.binWidth() * i, delta);
    }
    return out;
}

} // namespace logseek
