/**
 * @file
 * Half-open sector extents and overlap arithmetic.
 *
 * SectorExtent is the lingua franca of logseek: logical requests,
 * physical segments, map entries, cache keys and prefetch regions
 * are all expressed as [start, start + count) sector ranges.
 */

#ifndef LOGSEEK_UTIL_EXTENT_H
#define LOGSEEK_UTIL_EXTENT_H

#include <algorithm>
#include <cstdint>
#include <optional>

#include "units.h"

namespace logseek
{

/** A half-open range of sectors [start, start + count). */
struct SectorExtent
{
    std::uint64_t start = 0;
    SectorCount count = 0;

    /** One-past-the-end sector. */
    std::uint64_t end() const { return start + count; }

    /** True if the extent contains no sectors. */
    bool empty() const { return count == 0; }

    /** Size in bytes. */
    std::uint64_t bytes() const { return sectorsToBytes(count); }

    /** True if sector is inside the extent. */
    bool
    contains(std::uint64_t sector) const
    {
        return sector >= start && sector < end();
    }

    /** True if other is fully inside this extent. */
    bool
    covers(const SectorExtent &other) const
    {
        return other.empty() ||
               (other.start >= start && other.end() <= end());
    }

    /** True if the two extents share at least one sector. */
    bool
    overlaps(const SectorExtent &other) const
    {
        return start < other.end() && other.start < end();
    }

    /** True if other begins exactly where this extent ends. */
    bool
    precedes(const SectorExtent &other) const
    {
        return end() == other.start;
    }

    bool operator==(const SectorExtent &other) const = default;
};

/** Intersection of two extents, if non-empty. */
inline std::optional<SectorExtent>
intersect(const SectorExtent &a, const SectorExtent &b)
{
    const std::uint64_t lo = std::max(a.start, b.start);
    const std::uint64_t hi = std::min(a.end(), b.end());
    if (lo >= hi)
        return std::nullopt;
    return SectorExtent{lo, hi - lo};
}

} // namespace logseek

#endif // LOGSEEK_UTIL_EXTENT_H
