/**
 * @file
 * Cooperative cancellation for long-running replay work.
 *
 * A CancelSource owns a cancellation flag; the CancelTokens it hands
 * out are cheap, copyable views that workers poll at safe points
 * (the replay engine checks once per record batch). Cancellation is
 * strictly cooperative — nothing ever kills a thread — so a
 * cancelled run always unwinds through normal error paths with its
 * invariants intact. Sources can be chained: a per-cell source
 * linked to a sweep-wide token observes both its own deadline
 * watchdog and a global "stop everything" request.
 */

#ifndef LOGSEEK_UTIL_CANCELLATION_H
#define LOGSEEK_UTIL_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace logseek
{

/** Why a cancellation fired; None means "not cancelled". */
enum class CancelReason : std::uint8_t
{
    None = 0,
    Cancelled,        ///< an explicit stop request
    DeadlineExceeded, ///< a watchdog deadline expired
};

/** Printable name of a CancelReason. */
const char *toString(CancelReason reason);

class CancelSource;

/**
 * A read-only view of a cancellation flag. Default-constructed
 * tokens are never cancelled, so APIs can take one by value with no
 * "no cancellation" special case. Copies share the same flag.
 */
class CancelToken
{
  public:
    /** A token that can never be cancelled. */
    CancelToken() = default;

    /** True once the owning source (or a linked parent) fired. */
    bool cancelled() const;

    /** The first reason that fired; None while not cancelled. */
    CancelReason reason() const;

    /**
     * The cancellation as a typed Status: Cancelled or
     * DeadlineExceeded with `what` as message context. OK while not
     * cancelled.
     */
    Status toStatus(const std::string &what) const;

  private:
    friend class CancelSource;

    struct State
    {
        std::atomic<std::uint8_t> reason{0};
        /** Parent flag a linked source also observes; may be null. */
        std::shared_ptr<const State> parent;
    };

    explicit CancelToken(std::shared_ptr<const State> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<const State> state_;
};

/**
 * The writable side of a cancellation flag. Copyable — copies share
 * the flag, which is what a watchdog callback capturing the
 * per-cell source wants. cancel() is idempotent: the first reason
 * wins and later calls are no-ops.
 */
class CancelSource
{
  public:
    /** A fresh, independent flag. */
    CancelSource();

    /**
     * A flag linked under `parent`: tokens from this source report
     * cancelled when either this source fired or the parent did.
     */
    explicit CancelSource(const CancelToken &parent);

    /** Fire the flag; first reason wins. */
    void cancel(CancelReason reason = CancelReason::Cancelled);

    bool cancelled() const { return token().cancelled(); }

    CancelToken token() const { return CancelToken(state_); }

  private:
    std::shared_ptr<CancelToken::State> state_;
};

/**
 * Sleep for `duration`, waking early (returning false) if the token
 * fires. Used between retry attempts so a cancelled sweep does not
 * sit out a backoff. Returns true when the full duration elapsed.
 */
bool sleepFor(std::chrono::milliseconds duration,
              const CancelToken &cancel);

} // namespace logseek

#endif // LOGSEEK_UTIL_CANCELLATION_H
