#include "histogram.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "logging.h"

namespace logseek
{

void
EmpiricalCdf::add(double sample)
{
    samples_.push_back(sample);
    sorted_ = false;
}

void
EmpiricalCdf::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
EmpiricalCdf::fractionAtOrBelow(double x) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto it =
        std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
}

double
EmpiricalCdf::percentile(double p) const
{
    panicIf(samples_.empty(), "EmpiricalCdf::percentile on empty CDF");
    panicIf(p < 0.0 || p > 1.0, "EmpiricalCdf::percentile: p not in [0,1]");
    ensureSorted();
    if (samples_.size() == 1)
        return samples_.front();
    const double rank = p * static_cast<double>(samples_.size() - 1);
    const auto idx = static_cast<std::size_t>(std::llround(rank));
    return samples_[std::min(idx, samples_.size() - 1)];
}

double
EmpiricalCdf::min() const
{
    panicIf(samples_.empty(), "EmpiricalCdf::min on empty CDF");
    ensureSorted();
    return samples_.front();
}

double
EmpiricalCdf::max() const
{
    panicIf(samples_.empty(), "EmpiricalCdf::max on empty CDF");
    ensureSorted();
    return samples_.back();
}

double
EmpiricalCdf::mean() const
{
    if (samples_.empty())
        return 0.0;
    const double sum =
        std::accumulate(samples_.begin(), samples_.end(), 0.0);
    return sum / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>>
EmpiricalCdf::curve(double lo, double hi, std::size_t n) const
{
    panicIf(n < 2, "EmpiricalCdf::curve needs at least two points");
    panicIf(lo > hi, "EmpiricalCdf::curve: lo > hi");
    std::vector<std::pair<double, double>> points;
    points.reserve(n);
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = lo + step * static_cast<double>(i);
        points.emplace_back(x, fractionAtOrBelow(x));
    }
    return points;
}

Histogram::Histogram(std::uint64_t bin_width, std::size_t bin_count)
    : binWidth_(bin_width), bins_(bin_count, 0)
{
    panicIf(bin_width == 0, "Histogram: bin width must be > 0");
    panicIf(bin_count == 0, "Histogram: bin count must be > 0");
}

void
Histogram::add(std::uint64_t sample, std::uint64_t weight)
{
    const std::uint64_t index = sample / binWidth_;
    if (index < bins_.size())
        bins_[static_cast<std::size_t>(index)] += weight;
    else
        overflow_ += weight;
    total_ += weight;
}

std::uint64_t
Histogram::binWeight(std::size_t i) const
{
    panicIf(i >= bins_.size(), "Histogram::binWeight: index out of range");
    return bins_[i];
}

std::uint64_t
Histogram::binLowerEdge(std::size_t i) const
{
    panicIf(i >= bins_.size(),
            "Histogram::binLowerEdge: index out of range");
    return static_cast<std::uint64_t>(i) * binWidth_;
}

} // namespace logseek
