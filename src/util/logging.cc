#include "logging.h"

#include <iostream>

namespace logseek
{

void
inform(const std::string &msg)
{
    std::cerr << "info: " << msg << "\n";
}

void
warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
fatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n";
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n";
    throw PanicError(msg);
}

} // namespace logseek
