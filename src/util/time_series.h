/**
 * @file
 * Binned accumulation series for "metric over time" figures.
 *
 * The paper plots seek-overhead differences against operation number
 * (Figure 3); BinnedSeries accumulates signed values into fixed-width
 * index bins so such series can be regenerated directly.
 */

#ifndef LOGSEEK_UTIL_TIME_SERIES_H
#define LOGSEEK_UTIL_TIME_SERIES_H

#include <cstdint>
#include <vector>

namespace logseek
{

/**
 * Accumulates signed samples into fixed-width bins keyed by a
 * monotonically unbounded index (e.g. operation number). Bins grow
 * on demand.
 */
class BinnedSeries
{
  public:
    /** @param bin_width Indices per bin (> 0). */
    explicit BinnedSeries(std::uint64_t bin_width);

    /** Add value to the bin containing index. */
    void add(std::uint64_t index, std::int64_t value);

    /** Number of allocated bins (highest touched bin + 1). */
    std::size_t binCount() const { return bins_.size(); }

    /** Accumulated value of bin i (0 if never touched). */
    std::int64_t binValue(std::size_t i) const;

    /** Inclusive lower index edge of bin i. */
    std::uint64_t binLowerEdge(std::size_t i) const;

    /** Width configured at construction. */
    std::uint64_t binWidth() const { return binWidth_; }

    /** Sum over all bins. */
    std::int64_t total() const;

  private:
    std::uint64_t binWidth_;
    std::vector<std::int64_t> bins_;
};

/**
 * Element-wise difference of two BinnedSeries with equal bin width
 * (a - b), sized to the longer of the two.
 */
BinnedSeries difference(const BinnedSeries &a, const BinnedSeries &b);

} // namespace logseek

#endif // LOGSEEK_UTIL_TIME_SERIES_H
