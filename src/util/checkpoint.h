/**
 * @file
 * CRC-guarded, atomically-published checkpoint files.
 *
 * A checkpoint is a flat sequence of framed records:
 *
 *   frame = magic "LCKP" (4 bytes)
 *           payloadLen   u32 little-endian
 *           crc32        u32 little-endian, IEEE CRC-32 of payload
 *           payload      payloadLen bytes
 *
 * The reader never trusts the file: a frame whose CRC or length
 * does not check out is skipped by scanning forward to the next
 * magic (so one flipped bit loses one record, not the tail of the
 * file), and a file that ends inside a frame — the classic torn
 * write — is truncated to its last whole record. The writer keeps
 * the full record set and publishes every append by rewriting a
 * temporary file and renaming it over the target, so readers (and
 * crashes) only ever observe a complete, self-consistent file.
 */

#ifndef LOGSEEK_UTIL_CHECKPOINT_H
#define LOGSEEK_UTIL_CHECKPOINT_H

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace logseek
{

/** IEEE CRC-32 (the zlib/PNG polynomial) of the given bytes. */
std::uint32_t crc32(std::string_view bytes);

/**
 * Incremental form of crc32(): update() over consecutive slices
 * yields exactly crc32() of their concatenation, so multi-gigabyte
 * sections (the LSKC trace columns) can be checksummed through a
 * small buffer instead of one contiguous allocation.
 */
class Crc32
{
  public:
    /** Fold the next slice into the running checksum. */
    void update(std::string_view bytes);

    /** The CRC-32 of everything updated so far. */
    std::uint32_t value() const { return state_ ^ 0xffffffffu; }

  private:
    std::uint32_t state_ = 0xffffffffu;
};

/** Append one framed record to an in-memory file image. */
void appendCheckpointFrame(std::string &out,
                           std::string_view payload);

/** What a (possibly damaged) checkpoint file parsed to. */
struct CheckpointLoad
{
    /** Payloads of every intact frame, in file order. */
    std::vector<std::string> records;

    /** Frames dropped because their length or CRC was wrong. */
    std::uint64_t damagedFrames = 0;

    /** True when the file ended inside a frame (torn tail). */
    bool tornTail = false;

    /** Bytes not accounted for by an intact frame. */
    std::uint64_t bytesDropped = 0;

    bool clean() const
    {
        return damagedFrames == 0 && !tornTail;
    }
};

/** Parse an in-memory checkpoint image; never fails — damage is
 *  reported in the result. */
CheckpointLoad parseCheckpoint(std::string_view bytes);

/** Load and parse a checkpoint file; NotFound when it does not
 *  exist, Unavailable when it cannot be read. */
StatusOr<CheckpointLoad> loadCheckpoint(const std::string &path);

/**
 * Append-style checkpoint writer with atomic publication. Appends
 * are serialized internally, so sweep workers can call append()
 * concurrently as cells complete.
 */
class CheckpointWriter
{
  public:
    explicit CheckpointWriter(std::string path);

    /**
     * Start from already-validated records (resume): they are
     * re-framed and included in every subsequent publication,
     * physically dropping any damaged frames the load skipped.
     */
    void seed(std::vector<std::string> records);

    /**
     * Add one record and publish the whole file atomically
     * (write temp, flush, rename). Returns Unavailable on an I/O
     * failure; the in-memory record set keeps the record either
     * way, so a later append can still publish it.
     */
    Status append(std::string payload);

    const std::string &path() const { return path_; }

    /** Records currently held (seeded + appended). */
    std::size_t recordCount() const;

  private:
    Status publishLocked();

    std::string path_;
    std::vector<std::string> records_; // guarded by mutex_
    mutable std::mutex mutex_;
};

} // namespace logseek

#endif // LOGSEEK_UTIL_CHECKPOINT_H
