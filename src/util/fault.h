/**
 * @file
 * Deterministic fault injection for ingestion robustness testing.
 *
 * Storage pipelines meet truncated downloads, bit rot, interrupted
 * reads and mid-record EOF long before they meet clean traces. This
 * header provides seeded, reproducible versions of those faults so
 * tests can sweep hundreds of corruption scenarios and assert that
 * every one surfaces as a typed Status error or a counted skip —
 * never undefined behavior or a crash. All injection is pure: the
 * original bytes are untouched and equal seeds give equal faults.
 */

#ifndef LOGSEEK_UTIL_FAULT_H
#define LOGSEEK_UTIL_FAULT_H

#include <atomic>
#include <cstdint>
#include <istream>
#include <ostream>
#include <streambuf>
#include <string>
#include <string_view>

#include "util/random.h"
#include "util/status.h"

namespace logseek
{

/** The fault classes the harness can inject. */
enum class FaultKind : std::uint8_t
{
    Truncate,     ///< drop a seeded-length suffix
    BitFlip,      ///< flip one seeded bit
    ShortRead,    ///< deliver bytes in seeded sub-record chunks
    EofMidRecord, ///< end the stream inside a fixed-width record
};

/** Printable name of a FaultKind ("truncate", "bit-flip", ...). */
const char *toString(FaultKind kind);

/** Truncate to exactly length bytes (clamped to the input size). */
std::string truncateAt(std::string_view bytes, std::size_t length);

/**
 * Truncate at a seeded offset in [0, size); the result is always a
 * proper prefix of the input (empty input comes back empty).
 */
std::string injectTruncation(std::string_view bytes,
                             std::uint64_t seed);

/** Flip one seeded bit; a no-op on empty input. */
std::string injectBitFlip(std::string_view bytes,
                          std::uint64_t seed);

/**
 * Cut the stream inside a fixed-width record: keep the header and a
 * seeded number of whole records, then a seeded strict fraction of
 * the next record. Models a writer that died mid-append.
 *
 * @param header_bytes Size of the non-record preamble.
 * @param record_bytes Fixed record width (must be >= 2 so a strict
 *        partial record exists).
 */
std::string injectEofMidRecord(std::string_view bytes,
                               std::size_t header_bytes,
                               std::size_t record_bytes,
                               std::uint64_t seed);

/**
 * A read-only streambuf over an in-memory byte string that refills
 * in seeded chunks of 1..maxChunk bytes, reproducing short reads
 * from slow or interrupted media. Sequential access only (the trace
 * readers never seek).
 */
class ShortReadBuf : public std::streambuf
{
  public:
    ShortReadBuf(std::string bytes, std::uint64_t seed,
                 std::size_t max_chunk = 7);

  protected:
    int_type underflow() override;

  private:
    std::string bytes_;
    std::size_t pos_ = 0;
    std::size_t maxChunk_;
    Rng rng_;
};

/** An istream owning a ShortReadBuf. */
class ShortReadStream : public std::istream
{
  public:
    explicit ShortReadStream(std::string bytes, std::uint64_t seed,
                             std::size_t max_chunk = 7);

  private:
    ShortReadBuf buf_;
};

/**
 * A write-side streambuf with a byte budget, reproducing a disk
 * that fills up (short write) or a flush that fails. Bytes within
 * the budget are captured and readable via written(), so tests can
 * assert exactly which prefix reached "media" before the fault.
 */
class ShortWriteBuf : public std::streambuf
{
  public:
    /**
     * @param budget    Bytes accepted before writes start failing.
     * @param fail_sync When true, every flush reports failure even
     *                  if the budget was never exhausted.
     */
    explicit ShortWriteBuf(std::size_t budget,
                           bool fail_sync = false);

    /** The prefix that fit within the budget. */
    const std::string &written() const { return written_; }

  protected:
    int_type overflow(int_type ch) override;
    std::streamsize xsputn(const char *s,
                           std::streamsize n) override;
    int sync() override;

  private:
    std::size_t budget_;
    bool failSync_;
    std::string written_;
};

/** An ostream owning a ShortWriteBuf. */
class ShortWriteStream : public std::ostream
{
  public:
    explicit ShortWriteStream(std::size_t budget,
                              bool fail_sync = false);

    const std::string &written() const { return buf_.written(); }

  private:
    ShortWriteBuf buf_;
};

/**
 * A countdown fault: the first `failures` calls to onAccess() throw
 * StatusError(Unavailable), later calls succeed. Thread-safe, so a
 * sweep's workers can share one injector; with retry enabled the
 * affected cells surface as RETRIED_OK instead of FAILED.
 */
class TransientFaultInjector
{
  public:
    /** @param failures How many accesses fail before recovery. */
    explicit TransientFaultInjector(int failures)
        : remaining_(failures)
    {
    }

    /**
     * Throws StatusError with code Unavailable while failures
     * remain; `what` becomes the message context.
     */
    void onAccess(const std::string &what);

    /** How many faults have actually been thrown so far. */
    int faultsFired() const
    {
        return fired_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int> remaining_;
    std::atomic<int> fired_{0};
};

} // namespace logseek

#endif // LOGSEEK_UTIL_FAULT_H
