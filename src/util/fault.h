/**
 * @file
 * Deterministic fault injection for ingestion robustness testing.
 *
 * Storage pipelines meet truncated downloads, bit rot, interrupted
 * reads and mid-record EOF long before they meet clean traces. This
 * header provides seeded, reproducible versions of those faults so
 * tests can sweep hundreds of corruption scenarios and assert that
 * every one surfaces as a typed Status error or a counted skip —
 * never undefined behavior or a crash. All injection is pure: the
 * original bytes are untouched and equal seeds give equal faults.
 */

#ifndef LOGSEEK_UTIL_FAULT_H
#define LOGSEEK_UTIL_FAULT_H

#include <cstdint>
#include <istream>
#include <streambuf>
#include <string>
#include <string_view>

#include "util/random.h"

namespace logseek
{

/** The fault classes the harness can inject. */
enum class FaultKind : std::uint8_t
{
    Truncate,     ///< drop a seeded-length suffix
    BitFlip,      ///< flip one seeded bit
    ShortRead,    ///< deliver bytes in seeded sub-record chunks
    EofMidRecord, ///< end the stream inside a fixed-width record
};

/** Printable name of a FaultKind ("truncate", "bit-flip", ...). */
const char *toString(FaultKind kind);

/** Truncate to exactly length bytes (clamped to the input size). */
std::string truncateAt(std::string_view bytes, std::size_t length);

/**
 * Truncate at a seeded offset in [0, size); the result is always a
 * proper prefix of the input (empty input comes back empty).
 */
std::string injectTruncation(std::string_view bytes,
                             std::uint64_t seed);

/** Flip one seeded bit; a no-op on empty input. */
std::string injectBitFlip(std::string_view bytes,
                          std::uint64_t seed);

/**
 * Cut the stream inside a fixed-width record: keep the header and a
 * seeded number of whole records, then a seeded strict fraction of
 * the next record. Models a writer that died mid-append.
 *
 * @param header_bytes Size of the non-record preamble.
 * @param record_bytes Fixed record width (must be >= 2 so a strict
 *        partial record exists).
 */
std::string injectEofMidRecord(std::string_view bytes,
                               std::size_t header_bytes,
                               std::size_t record_bytes,
                               std::uint64_t seed);

/**
 * A read-only streambuf over an in-memory byte string that refills
 * in seeded chunks of 1..maxChunk bytes, reproducing short reads
 * from slow or interrupted media. Sequential access only (the trace
 * readers never seek).
 */
class ShortReadBuf : public std::streambuf
{
  public:
    ShortReadBuf(std::string bytes, std::uint64_t seed,
                 std::size_t max_chunk = 7);

  protected:
    int_type underflow() override;

  private:
    std::string bytes_;
    std::size_t pos_ = 0;
    std::size_t maxChunk_;
    Rng rng_;
};

/** An istream owning a ShortReadBuf. */
class ShortReadStream : public std::istream
{
  public:
    explicit ShortReadStream(std::string bytes, std::uint64_t seed,
                             std::size_t max_chunk = 7);

  private:
    ShortReadBuf buf_;
};

} // namespace logseek

#endif // LOGSEEK_UTIL_FAULT_H
