#include "cancellation.h"

#include <algorithm>
#include <thread>

namespace logseek
{

const char *
toString(CancelReason reason)
{
    switch (reason) {
      case CancelReason::None: return "none";
      case CancelReason::Cancelled: return "cancelled";
      case CancelReason::DeadlineExceeded:
        return "deadline-exceeded";
    }
    return "unknown";
}

bool
CancelToken::cancelled() const
{
    return reason() != CancelReason::None;
}

CancelReason
CancelToken::reason() const
{
    for (const State *state = state_.get(); state != nullptr;
         state = state->parent.get()) {
        const auto raw =
            state->reason.load(std::memory_order_acquire);
        if (raw != 0)
            return static_cast<CancelReason>(raw);
    }
    return CancelReason::None;
}

Status
CancelToken::toStatus(const std::string &what) const
{
    switch (reason()) {
      case CancelReason::None: return Status();
      case CancelReason::DeadlineExceeded:
        return deadlineExceededError(what + ": deadline exceeded");
      case CancelReason::Cancelled:
      default:
        return cancelledError(what + ": cancelled");
    }
}

CancelSource::CancelSource()
    : state_(std::make_shared<CancelToken::State>())
{
}

CancelSource::CancelSource(const CancelToken &parent)
    : state_(std::make_shared<CancelToken::State>())
{
    state_->parent = parent.state_;
}

void
CancelSource::cancel(CancelReason reason)
{
    std::uint8_t expected = 0;
    state_->reason.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(reason),
        std::memory_order_acq_rel);
}

bool
sleepFor(std::chrono::milliseconds duration,
         const CancelToken &cancel)
{
    // Sleep in short slices so a cancellation fired mid-backoff is
    // noticed within a few milliseconds, not after the full wait.
    constexpr auto kSlice = std::chrono::milliseconds(5);
    auto remaining = duration;
    while (remaining.count() > 0) {
        if (cancel.cancelled())
            return false;
        const auto step = std::min(remaining, kSlice);
        std::this_thread::sleep_for(step);
        remaining -= step;
    }
    return !cancel.cancelled();
}

} // namespace logseek
