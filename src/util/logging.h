/**
 * @file
 * Minimal status/error reporting in the gem5 spirit.
 *
 * fatal() terminates because of a user error (bad configuration or
 * arguments); panic() terminates because of an internal logseek bug.
 * inform()/warn() print status without stopping the program.
 */

#ifndef LOGSEEK_UTIL_LOGGING_H
#define LOGSEEK_UTIL_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace logseek
{

/** Thrown by fatal(): a user-correctable configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Print a warning message to stderr. */
void warn(const std::string &msg);

/** Report a user error; throws FatalError. */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal bug; throws PanicError. */
[[noreturn]] void panic(const std::string &msg);

/**
 * Panic unless a condition holds. Used for internal invariants that
 * must survive release builds (unlike assert()).
 */
inline void
panicIf(bool condition, const std::string &msg)
{
    if (condition)
        panic(msg);
}

} // namespace logseek

#endif // LOGSEEK_UTIL_LOGGING_H
