/**
 * @file
 * Empirical distributions: sample-based CDFs and fixed-bin histograms.
 *
 * Both are used to regenerate the paper's CDF figures (access
 * distances, fragmented-read fragment counts, cache-size curves).
 */

#ifndef LOGSEEK_UTIL_HISTOGRAM_H
#define LOGSEEK_UTIL_HISTOGRAM_H

#include <cstdint>
#include <utility>
#include <vector>

namespace logseek
{

/**
 * Empirical CDF over double-valued samples.
 *
 * Samples are accumulated with add(); queries sort lazily.
 */
class EmpiricalCdf
{
  public:
    /** Add one sample. */
    void add(double sample);

    /** Number of samples. */
    std::size_t count() const { return samples_.size(); }

    /** Fraction of samples <= x; 0 if empty. */
    double fractionAtOrBelow(double x) const;

    /**
     * Value at quantile p in [0, 1] (nearest-rank). Requires at
     * least one sample.
     */
    double percentile(double p) const;

    /** Smallest sample; requires at least one sample. */
    double min() const;

    /** Largest sample; requires at least one sample. */
    double max() const;

    /** Arithmetic mean; 0 if empty. */
    double mean() const;

    /**
     * Evaluate the CDF curve at n evenly spaced x positions between
     * lo and hi (inclusive). Returns (x, F(x)) pairs; useful for
     * printing plot-ready series.
     */
    std::vector<std::pair<double, double>>
    curve(double lo, double hi, std::size_t n) const;

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Fixed-width-bin histogram over unsigned integer samples, with an
 * overflow bin for samples past the last edge.
 */
class Histogram
{
  public:
    /**
     * @param bin_width Width of each bin (> 0).
     * @param bin_count Number of regular bins (> 0).
     */
    Histogram(std::uint64_t bin_width, std::size_t bin_count);

    /** Add one sample with weight 1. */
    void add(std::uint64_t sample) { add(sample, 1); }

    /** Add one sample with a given weight. */
    void add(std::uint64_t sample, std::uint64_t weight);

    /** Total weight added. */
    std::uint64_t totalWeight() const { return total_; }

    /** Weight in regular bin i. */
    std::uint64_t binWeight(std::size_t i) const;

    /** Weight of samples beyond the last regular bin. */
    std::uint64_t overflowWeight() const { return overflow_; }

    /** Number of regular bins. */
    std::size_t binCount() const { return bins_.size(); }

    /** Inclusive lower edge of regular bin i. */
    std::uint64_t binLowerEdge(std::size_t i) const;

  private:
    std::uint64_t binWidth_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace logseek

#endif // LOGSEEK_UTIL_HISTOGRAM_H
