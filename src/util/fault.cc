#include "fault.h"

#include <algorithm>

#include "util/logging.h"

namespace logseek
{

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Truncate: return "truncate";
      case FaultKind::BitFlip: return "bit-flip";
      case FaultKind::ShortRead: return "short-read";
      case FaultKind::EofMidRecord: return "eof-mid-record";
    }
    return "unknown";
}

std::string
truncateAt(std::string_view bytes, std::size_t length)
{
    return std::string(bytes.substr(0, length));
}

std::string
injectTruncation(std::string_view bytes, std::uint64_t seed)
{
    if (bytes.empty())
        return {};
    Rng rng(seed);
    return truncateAt(bytes, rng.nextUint(bytes.size()));
}

std::string
injectBitFlip(std::string_view bytes, std::uint64_t seed)
{
    std::string out(bytes);
    if (out.empty())
        return out;
    Rng rng(seed);
    const std::size_t byte = rng.nextUint(out.size());
    const unsigned bit =
        static_cast<unsigned>(rng.nextUint(8));
    out[byte] = static_cast<char>(
        static_cast<unsigned char>(out[byte]) ^ (1u << bit));
    return out;
}

std::string
injectEofMidRecord(std::string_view bytes, std::size_t header_bytes,
                   std::size_t record_bytes, std::uint64_t seed)
{
    panicIf(record_bytes < 2,
            "injectEofMidRecord: record must be >= 2 bytes");
    if (bytes.size() <= header_bytes)
        return std::string(bytes);
    Rng rng(seed);
    const std::size_t records =
        (bytes.size() - header_bytes) / record_bytes;
    if (records == 0)
        return truncateAt(bytes, header_bytes);
    const std::size_t keep_records = rng.nextUint(records);
    // A strict partial record: at least 1 byte, at most width - 1.
    const std::size_t partial =
        1 + rng.nextUint(record_bytes - 1);
    return truncateAt(bytes, header_bytes +
                                 keep_records * record_bytes +
                                 partial);
}

ShortReadBuf::ShortReadBuf(std::string bytes, std::uint64_t seed,
                           std::size_t max_chunk)
    : bytes_(std::move(bytes)),
      maxChunk_(std::max<std::size_t>(1, max_chunk)), rng_(seed)
{
}

ShortReadBuf::int_type
ShortReadBuf::underflow()
{
    if (gptr() < egptr())
        return traits_type::to_int_type(*gptr());
    if (pos_ >= bytes_.size())
        return traits_type::eof();
    const std::size_t chunk =
        std::min(bytes_.size() - pos_,
                 static_cast<std::size_t>(
                     1 + rng_.nextUint(maxChunk_)));
    char *base = bytes_.data() + pos_;
    setg(base, base, base + chunk);
    pos_ += chunk;
    return traits_type::to_int_type(*gptr());
}

ShortReadStream::ShortReadStream(std::string bytes,
                                 std::uint64_t seed,
                                 std::size_t max_chunk)
    : std::istream(nullptr),
      buf_(std::move(bytes), seed, max_chunk)
{
    rdbuf(&buf_);
}

ShortWriteBuf::ShortWriteBuf(std::size_t budget, bool fail_sync)
    : budget_(budget), failSync_(fail_sync)
{
}

ShortWriteBuf::int_type
ShortWriteBuf::overflow(int_type ch)
{
    if (traits_type::eq_int_type(ch, traits_type::eof()))
        return traits_type::not_eof(ch);
    if (written_.size() >= budget_)
        return traits_type::eof();
    written_.push_back(traits_type::to_char_type(ch));
    return ch;
}

std::streamsize
ShortWriteBuf::xsputn(const char *s, std::streamsize n)
{
    const std::size_t room = budget_ - std::min(budget_,
                                                written_.size());
    const std::size_t take =
        std::min(room, static_cast<std::size_t>(n));
    written_.append(s, take);
    // Returning less than n makes the ostream raise badbit — the
    // same signal a real short write produces.
    return static_cast<std::streamsize>(take);
}

int
ShortWriteBuf::sync()
{
    return failSync_ ? -1 : 0;
}

ShortWriteStream::ShortWriteStream(std::size_t budget,
                                   bool fail_sync)
    : std::ostream(nullptr), buf_(budget, fail_sync)
{
    rdbuf(&buf_);
}

void
TransientFaultInjector::onAccess(const std::string &what)
{
    // fetch_sub races are fine: each failing caller takes exactly
    // one ticket, and once the count goes non-positive everyone
    // succeeds.
    if (remaining_.load(std::memory_order_relaxed) <= 0)
        return;
    if (remaining_.fetch_sub(1, std::memory_order_relaxed) <= 0)
        return;
    fired_.fetch_add(1, std::memory_order_relaxed);
    throw StatusError(
        unavailableError(what + ": injected transient fault"));
}

} // namespace logseek
