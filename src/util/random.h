/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All logseek generators draw from Rng, a small xoshiro256** engine
 * seeded explicitly, so every experiment is reproducible bit-for-bit
 * across platforms (std::mt19937 distributions are not portable
 * across standard library implementations, so we implement the
 * distributions we need by hand).
 */

#ifndef LOGSEEK_UTIL_RANDOM_H
#define LOGSEEK_UTIL_RANDOM_H

#include <cstdint>
#include <vector>

namespace logseek
{

/**
 * xoshiro256** pseudo-random engine with splitmix64 seeding.
 *
 * Satisfies UniformRandomBitGenerator, but the member helpers below
 * are preferred because they are deterministic across platforms.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed the engine; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound), bound > 0 (unbiased). */
    std::uint64_t nextUint(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive, lo <= hi. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /**
     * Fork a statistically independent child stream. Used to give
     * each workload phase its own stream so that reordering phases
     * does not perturb other phases' draws.
     */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf(s) sampler over ranks {0, 1, ..., n-1} by inverted-CDF table.
 *
 * Rank 0 is the most popular item. Used to synthesize the skewed
 * fragment-popularity distributions of paper Figure 10.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of items, n >= 1.
     * @param skew Zipf exponent s >= 0 (0 = uniform).
     */
    ZipfSampler(std::size_t n, double skew);

    /** Draw one rank in [0, n). */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace logseek

#endif // LOGSEEK_UTIL_RANDOM_H
