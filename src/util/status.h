/**
 * @file
 * Typed, recoverable error handling (Status / StatusOr<T>).
 *
 * fatal()/panic() (util/logging.h) terminate the whole run, which is
 * the wrong tool for a fleet-scale replay pipeline: one corrupt CSV
 * line or short binary read should degrade a single trace, not the
 * batch. Functions on fallible paths (trace ingestion, replay entry
 * points) therefore return Status or StatusOr<T> in the
 * absl/leveldb style, and the legacy throwing entry points are kept
 * as thin wrappers that convert a non-OK Status into FatalError.
 *
 * Conventions:
 *  - InvalidArgument  caller passed something structurally wrong
 *  - NotFound         a named resource (file, workload) is missing
 *  - DataLoss         input bytes are corrupt or truncated
 *  - ResourceExhausted a policy budget was exceeded (error budget)
 *  - FailedPrecondition an invariant check failed on otherwise
 *                     well-formed input
 *  - Unavailable      a transient I/O or resource failure; retrying
 *                     the same operation may succeed
 *  - Cancelled        the caller asked for the work to stop
 *  - DeadlineExceeded a per-operation deadline expired before the
 *                     work completed
 *  - Internal         a bug in logseek itself surfaced
 */

#ifndef LOGSEEK_UTIL_STATUS_H
#define LOGSEEK_UTIL_STATUS_H

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace logseek
{

/** Canonical error space, a pragmatic subset of absl's. */
enum class StatusCode : std::uint8_t
{
    Ok = 0,
    InvalidArgument,
    NotFound,
    OutOfRange,
    DataLoss,
    FailedPrecondition,
    ResourceExhausted,
    Unavailable,
    Cancelled,
    DeadlineExceeded,
    Internal,
};

/** Printable name of a StatusCode ("OK", "DATA_LOSS", ...). */
inline const char *
toString(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "OK";
      case StatusCode::InvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::NotFound: return "NOT_FOUND";
      case StatusCode::OutOfRange: return "OUT_OF_RANGE";
      case StatusCode::DataLoss: return "DATA_LOSS";
      case StatusCode::FailedPrecondition:
        return "FAILED_PRECONDITION";
      case StatusCode::ResourceExhausted:
        return "RESOURCE_EXHAUSTED";
      case StatusCode::Unavailable: return "UNAVAILABLE";
      case StatusCode::Cancelled: return "CANCELLED";
      case StatusCode::DeadlineExceeded:
        return "DEADLINE_EXCEEDED";
      case StatusCode::Internal: return "INTERNAL";
    }
    return "UNKNOWN";
}

/** An error code plus a human-readable message; cheap to move. */
class Status
{
  public:
    /** Default status is OK. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "DATA_LOSS: binary trace: truncated header" */
    std::string
    toString() const
    {
        if (ok())
            return "OK";
        return std::string(logseek::toString(code_)) + ": " +
               message_;
    }

    /**
     * Bridge to the legacy throwing interface: throw FatalError if
     * this status is not OK. Used by the thin wrappers that preserve
     * the historical fatal()-on-bad-input behavior.
     */
    void
    orFatal() const
    {
        if (!ok())
            fatal(message_);
    }

    bool operator==(const Status &other) const = default;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/** Factory helpers, absl-style. */
inline Status
invalidArgumentError(std::string message)
{
    return Status(StatusCode::InvalidArgument, std::move(message));
}

inline Status
notFoundError(std::string message)
{
    return Status(StatusCode::NotFound, std::move(message));
}

inline Status
outOfRangeError(std::string message)
{
    return Status(StatusCode::OutOfRange, std::move(message));
}

inline Status
dataLossError(std::string message)
{
    return Status(StatusCode::DataLoss, std::move(message));
}

inline Status
failedPreconditionError(std::string message)
{
    return Status(StatusCode::FailedPrecondition,
                  std::move(message));
}

inline Status
resourceExhaustedError(std::string message)
{
    return Status(StatusCode::ResourceExhausted,
                  std::move(message));
}

inline Status
unavailableError(std::string message)
{
    return Status(StatusCode::Unavailable, std::move(message));
}

inline Status
cancelledError(std::string message)
{
    return Status(StatusCode::Cancelled, std::move(message));
}

inline Status
deadlineExceededError(std::string message)
{
    return Status(StatusCode::DeadlineExceeded,
                  std::move(message));
}

inline Status
internalError(std::string message)
{
    return Status(StatusCode::Internal, std::move(message));
}

/**
 * An exception carrying a typed Status across layers that cannot
 * return one (callbacks returning plain values, constructors).
 * Fallible boundaries — Simulator::tryRun, the sweep runner's cell
 * and loader paths — catch it and surface the status unchanged, so
 * a transient Unavailable thrown deep inside a loader still reaches
 * the retry logic with its code intact.
 */
class StatusError : public std::exception
{
  public:
    explicit StatusError(Status status)
        : status_(std::move(status)), what_(status_.toString())
    {
    }

    const Status &status() const { return status_; }

    const char *what() const noexcept override
    {
        return what_.c_str();
    }

  private:
    Status status_;
    std::string what_;
};

/**
 * Either a value of type T or a non-OK Status explaining why there
 * is none. Accessing value() on an error is a logseek bug and
 * panics (it never silently returns garbage).
 */
template <typename T>
class StatusOr
{
  public:
    /** Implicit from a non-OK status (OK without a value panics). */
    StatusOr(Status status) : status_(std::move(status))
    {
        panicIf(status_.ok(),
                "StatusOr: OK status requires a value");
    }

    /** Implicit from a value. */
    StatusOr(T value) : value_(std::move(value)) {}

    bool ok() const { return value_.has_value(); }
    const Status &status() const { return status_; }

    const T &
    value() const &
    {
        requireOk();
        return *value_;
    }

    T &
    value() &
    {
        requireOk();
        return *value_;
    }

    T &&
    value() &&
    {
        requireOk();
        return std::move(*value_);
    }

    const T &operator*() const & { return value(); }
    T &operator*() & { return value(); }
    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }

    /** The value, or fallback when this holds an error. */
    T
    valueOr(T fallback) const &
    {
        return ok() ? *value_ : std::move(fallback);
    }

  private:
    void
    requireOk() const
    {
        panicIf(!ok(), "StatusOr: value() on error status: " +
                           status_.toString());
    }

    Status status_;
    std::optional<T> value_;
};

} // namespace logseek

#endif // LOGSEEK_UTIL_STATUS_H
