/**
 * @file
 * Umbrella header: pulls in the whole public logseek API.
 *
 * Fine-grained headers remain the preferred includes for library
 * consumers that care about compile time; this header is for
 * examples, quick experiments and downstream prototypes.
 */

#ifndef LOGSEEK_LOGSEEK_H
#define LOGSEEK_LOGSEEK_H

#include "analysis/misordered.h"
#include "analysis/observers.h"
#include "analysis/report.h"
#include "analysis/validating_observer.h"
#include "disk/head.h"
#include "disk/pba_cache.h"
#include "disk/seek_time.h"
#include "stl/accounting.h"
#include "stl/conventional.h"
#include "stl/defrag.h"
#include "stl/extent_map.h"
#include "stl/finite_log.h"
#include "stl/log_structured.h"
#include "stl/media_cache.h"
#include "stl/prefetch.h"
#include "stl/read_stage.h"
#include "stl/replay_engine.h"
#include "stl/selective_cache.h"
#include "stl/simulator.h"
#include "stl/translation_layer.h"
#include "sweep/cli.h"
#include "sweep/report.h"
#include "sweep/sweep_runner.h"
#include "sweep/task_pool.h"
#include "trace/binary.h"
#include "trace/msr_csv.h"
#include "trace/record.h"
#include "trace/reorder.h"
#include "trace/stats.h"
#include "trace/tools.h"
#include "trace/trace.h"
#include "util/extent.h"
#include "util/fault.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"
#include "util/time_series.h"
#include "util/units.h"
#include "workloads/builder.h"
#include "workloads/phases.h"
#include "workloads/profiles.h"

#endif // LOGSEEK_LOGSEEK_H
