#include "zone.h"

#include <algorithm>

#include "util/logging.h"

namespace logseek::disk
{

const char *
toString(ZoneType type)
{
    switch (type) {
      case ZoneType::Conventional: return "conv";
      case ZoneType::SequentialWritePreferred: return "swp";
      case ZoneType::SequentialWriteRequired: return "swr";
    }
    return "unknown";
}

const char *
toString(ZoneCondition condition)
{
    switch (condition) {
      case ZoneCondition::Empty: return "empty";
      case ZoneCondition::ImplicitOpen: return "implicit-open";
      case ZoneCondition::ExplicitOpen: return "explicit-open";
      case ZoneCondition::Closed: return "closed";
      case ZoneCondition::Full: return "full";
      case ZoneCondition::ReadOnly: return "read-only";
      case ZoneCondition::Offline: return "offline";
    }
    return "unknown";
}

const char *
toString(DeviceErrc errc)
{
    switch (errc) {
      case DeviceErrc::WritePointerViolation:
        return "WP_VIOLATION";
      case DeviceErrc::TooManyOpenZones:
        return "TOO_MANY_OPEN_ZONES";
      case DeviceErrc::ZoneReadOnly: return "ZONE_READ_ONLY";
      case DeviceErrc::ZoneOffline: return "ZONE_OFFLINE";
      case DeviceErrc::InvalidTransition:
        return "INVALID_TRANSITION";
      case DeviceErrc::TransientMediaError:
        return "TRANSIENT_MEDIA_ERROR";
      case DeviceErrc::GrownDefect: return "GROWN_DEFECT";
      case DeviceErrc::PowerLoss: return "POWER_LOSS";
    }
    return "UNKNOWN";
}

StatusCode
statusCodeOf(DeviceErrc errc)
{
    switch (errc) {
      case DeviceErrc::TransientMediaError:
        return StatusCode::Unavailable;
      case DeviceErrc::GrownDefect:
      case DeviceErrc::ZoneOffline:
      case DeviceErrc::PowerLoss:
        return StatusCode::DataLoss;
      case DeviceErrc::TooManyOpenZones:
        return StatusCode::ResourceExhausted;
      case DeviceErrc::WritePointerViolation:
      case DeviceErrc::ZoneReadOnly:
      case DeviceErrc::InvalidTransition:
        return StatusCode::FailedPrecondition;
    }
    return StatusCode::Internal;
}

namespace
{

std::string
errcTag(DeviceErrc errc)
{
    std::string tag("[");
    tag.append(toString(errc));
    tag.append("]");
    return tag;
}

} // namespace

Status
deviceError(DeviceErrc errc, const std::string &message)
{
    std::string text = errcTag(errc);
    text.append(" ");
    text.append(message);
    return Status(statusCodeOf(errc), std::move(text));
}

bool
isDeviceError(const Status &status, DeviceErrc errc)
{
    if (status.code() != statusCodeOf(errc))
        return false;
    return status.message().rfind(errcTag(errc), 0) == 0;
}

namespace
{

std::string
zoneContext(std::size_t index, const Zone &zone)
{
    return "zone " + std::to_string(index) + " (" +
           std::string(toString(zone.type)) + ", " +
           std::string(toString(zone.condition)) + ")";
}

/** Errors shared by every op touching a degraded zone. */
Status
degradedZoneError(std::size_t index, const Zone &zone,
                  const char *op)
{
    if (zone.condition == ZoneCondition::Offline)
        return deviceError(DeviceErrc::ZoneOffline,
                           zoneContext(index, zone) + ": " + op +
                               " refused");
    return deviceError(DeviceErrc::ZoneReadOnly,
                       zoneContext(index, zone) + ": " + op +
                           " refused");
}

} // namespace

ZoneSet::ZoneSet(const ZoneLayout &layout) : layout_(layout)
{
    panicIf(layout_.zoneSectors == 0,
            "ZoneSet: zone size must be positive");
    panicIf(layout_.maxOpenZones == 0,
            "ZoneSet: open-zone limit must be positive");
}

const Zone &
ZoneSet::zone(std::size_t index) const
{
    panicIf(index >= zones_.size(), "ZoneSet: zone out of range");
    return zones_[index];
}

Zone &
ZoneSet::zoneAt(std::size_t index)
{
    panicIf(index >= zones_.size(), "ZoneSet: zone out of range");
    return zones_[index];
}

std::size_t
ZoneSet::zoneIndexOf(std::uint64_t sector)
{
    ensureCovers(sector + 1);
    if (layout_.anchorSector > 0) {
        if (sector < layout_.anchorSector)
            return 0;
        return 1 + static_cast<std::size_t>(
                       (sector - layout_.anchorSector) /
                       layout_.zoneSectors);
    }
    return static_cast<std::size_t>(sector / layout_.zoneSectors);
}

void
ZoneSet::ensureCovers(std::uint64_t end_sector)
{
    while (zones_.empty() ? end_sector > 0
                          : zones_.back().end() < end_sector) {
        Zone zone;
        if (zones_.empty() && layout_.anchorSector > 0) {
            // The leading anchor zone covering the pre-existing
            // identity region.
            zone.start = 0;
            zone.capacity = layout_.anchorSector;
        } else {
            zone.start =
                zones_.empty() ? 0 : zones_.back().end();
            zone.capacity = layout_.zoneSectors;
        }
        zone.writePointer = zone.start;
        zone.type = layout_.type;
        zones_.push_back(zone);
    }
}

void
ZoneSet::fillTo(std::uint64_t end_sector)
{
    if (end_sector == 0)
        return;
    ensureCovers(end_sector);
    for (auto &zone : zones_) {
        if (zone.type == ZoneType::Conventional ||
            zone.start >= end_sector)
            break;
        if (zone.end() <= end_sector) {
            zone.writePointer = zone.end();
            setCondition(zone, ZoneCondition::Full);
        } else {
            zone.writePointer = end_sector;
            // CLOSED rather than open: pre-existing data must not
            // consume open-zone slots the replay needs.
            setCondition(zone, zone.writePointer > zone.start
                                   ? ZoneCondition::Closed
                                   : ZoneCondition::Empty);
        }
    }
}

void
ZoneSet::setCondition(Zone &zone, ZoneCondition next)
{
    const bool was_open = zone.open();
    zone.condition = next;
    if (!was_open && zone.open()) {
        ++openCount_;
        zone.openStamp = ++clock_;
    } else if (was_open && !zone.open()) {
        --openCount_;
    }
}

Status
ZoneSet::acquireOpenSlot()
{
    if (openCount_ < layout_.maxOpenZones)
        return Status();
    // At the limit: evict the least recently opened implicitly
    // open zone, the way a drive's zone resources behave.
    Zone *victim = nullptr;
    for (auto &zone : zones_) {
        if (zone.condition != ZoneCondition::ImplicitOpen)
            continue;
        if (victim == nullptr ||
            zone.openStamp < victim->openStamp)
            victim = &zone;
    }
    if (victim == nullptr)
        return deviceError(
            DeviceErrc::TooManyOpenZones,
            "open-zone limit " +
                std::to_string(layout_.maxOpenZones) +
                " reached and every open zone is explicitly open");
    setCondition(*victim,
                 victim->writePointer > victim->start
                     ? ZoneCondition::Closed
                     : ZoneCondition::Empty);
    ++implicitCloses_;
    return Status();
}

Status
ZoneSet::open(std::size_t index, bool explicit_open)
{
    Zone &zone = zoneAt(index);
    if (zone.type == ZoneType::Conventional)
        return deviceError(DeviceErrc::InvalidTransition,
                           zoneContext(index, zone) +
                               ": open undefined for "
                               "conventional zones");
    switch (zone.condition) {
    case ZoneCondition::ReadOnly:
    case ZoneCondition::Offline:
        return degradedZoneError(index, zone, "open");
    case ZoneCondition::Full:
        return deviceError(DeviceErrc::InvalidTransition,
                           zoneContext(index, zone) +
                               ": cannot open a full zone");
    case ZoneCondition::ExplicitOpen:
        return Status(); // idempotent
    case ZoneCondition::ImplicitOpen:
        // Promotion keeps the already-held slot.
        if (explicit_open)
            zone.condition = ZoneCondition::ExplicitOpen;
        return Status();
    case ZoneCondition::Empty:
    case ZoneCondition::Closed: {
        const Status slot = acquireOpenSlot();
        if (!slot.ok())
            return slot;
        setCondition(zone, explicit_open
                               ? ZoneCondition::ExplicitOpen
                               : ZoneCondition::ImplicitOpen);
        return Status();
    }
    }
    return internalError("ZoneSet::open: unreachable");
}

Status
ZoneSet::close(std::size_t index)
{
    Zone &zone = zoneAt(index);
    if (zone.type == ZoneType::Conventional)
        return deviceError(DeviceErrc::InvalidTransition,
                           zoneContext(index, zone) +
                               ": close undefined for "
                               "conventional zones");
    switch (zone.condition) {
    case ZoneCondition::ReadOnly:
    case ZoneCondition::Offline:
        return degradedZoneError(index, zone, "close");
    case ZoneCondition::Empty:
    case ZoneCondition::Full:
        return deviceError(DeviceErrc::InvalidTransition,
                           zoneContext(index, zone) +
                               ": close requires an open zone");
    case ZoneCondition::Closed:
        return Status(); // idempotent
    case ZoneCondition::ImplicitOpen:
    case ZoneCondition::ExplicitOpen:
        setCondition(zone, zone.writePointer > zone.start
                               ? ZoneCondition::Closed
                               : ZoneCondition::Empty);
        return Status();
    }
    return internalError("ZoneSet::close: unreachable");
}

Status
ZoneSet::finish(std::size_t index)
{
    Zone &zone = zoneAt(index);
    if (zone.type == ZoneType::Conventional)
        return deviceError(DeviceErrc::InvalidTransition,
                           zoneContext(index, zone) +
                               ": finish undefined for "
                               "conventional zones");
    switch (zone.condition) {
    case ZoneCondition::ReadOnly:
    case ZoneCondition::Offline:
        return degradedZoneError(index, zone, "finish");
    case ZoneCondition::Full:
        return Status(); // idempotent
    case ZoneCondition::Empty:
    case ZoneCondition::ImplicitOpen:
    case ZoneCondition::ExplicitOpen:
    case ZoneCondition::Closed:
        zone.writePointer = zone.end();
        setCondition(zone, ZoneCondition::Full);
        return Status();
    }
    return internalError("ZoneSet::finish: unreachable");
}

Status
ZoneSet::reset(std::size_t index)
{
    Zone &zone = zoneAt(index);
    if (zone.type == ZoneType::Conventional)
        return deviceError(DeviceErrc::InvalidTransition,
                           zoneContext(index, zone) +
                               ": reset undefined for "
                               "conventional zones");
    switch (zone.condition) {
    case ZoneCondition::ReadOnly:
    case ZoneCondition::Offline:
        return degradedZoneError(index, zone, "reset");
    case ZoneCondition::Empty:
    case ZoneCondition::ImplicitOpen:
    case ZoneCondition::ExplicitOpen:
    case ZoneCondition::Closed:
    case ZoneCondition::Full:
        zone.writePointer = zone.start;
        setCondition(zone, ZoneCondition::Empty);
        ++resets_;
        return Status();
    }
    return internalError("ZoneSet::reset: unreachable");
}

Status
ZoneSet::write(std::size_t index, const SectorExtent &piece)
{
    Zone &zone = zoneAt(index);
    panicIf(piece.empty() || !zone.extent().covers(piece),
            "ZoneSet::write: piece must be a non-empty sub-extent "
            "of the zone");
    switch (zone.condition) {
    case ZoneCondition::ReadOnly:
    case ZoneCondition::Offline:
        return degradedZoneError(index, zone, "write");
    default:
        break;
    }
    if (zone.type == ZoneType::Conventional)
        return Status(); // random writes in place, no pointer

    const bool sequential = piece.start == zone.writePointer;
    if (zone.type == ZoneType::SequentialWriteRequired) {
        if (zone.condition == ZoneCondition::Full)
            return deviceError(DeviceErrc::WritePointerViolation,
                               zoneContext(index, zone) +
                                   ": write into a full zone");
        if (!sequential)
            return deviceError(
                DeviceErrc::WritePointerViolation,
                zoneContext(index, zone) + ": write at sector " +
                    std::to_string(piece.start) +
                    ", write pointer at " +
                    std::to_string(zone.writePointer));
    }

    if (!zone.open()) {
        const Status slot = acquireOpenSlot();
        if (!slot.ok())
            return slot;
        setCondition(zone, ZoneCondition::ImplicitOpen);
    } else {
        zone.openStamp = ++clock_;
    }

    if (sequential) {
        zone.writePointer = piece.end();
    } else {
        // SWP: absorbed out of policy; the pointer tracks the
        // furthest written sector.
        ++outOfPolicyWrites_;
        zone.writePointer =
            std::max(zone.writePointer, piece.end());
    }
    if (zone.writePointer >= zone.end())
        setCondition(zone, ZoneCondition::Full);
    return Status();
}

Status
ZoneSet::checkRead(std::size_t index,
                   const SectorExtent &piece) const
{
    const Zone &z = zone(index);
    panicIf(piece.empty() || !z.extent().covers(piece),
            "ZoneSet::checkRead: piece must be a non-empty "
            "sub-extent of the zone");
    if (z.condition == ZoneCondition::Offline)
        return deviceError(DeviceErrc::ZoneOffline,
                           zoneContext(index, z) +
                               ": read refused");
    return Status();
}

void
ZoneSet::forceCondition(std::size_t index, ZoneCondition condition)
{
    setCondition(zoneAt(index), condition);
}

void
ZoneSet::moveWritePointer(std::size_t index, std::uint64_t sector)
{
    Zone &zone = zoneAt(index);
    zone.writePointer =
        std::clamp(sector, zone.start, zone.end());
    if (zone.condition == ZoneCondition::Full &&
        zone.writePointer < zone.end())
        setCondition(zone, ZoneCondition::Closed);
}

std::array<std::uint64_t, kZoneConditionCount>
ZoneSet::conditionCensus() const
{
    std::array<std::uint64_t, kZoneConditionCount> census{};
    for (const auto &zone : zones_)
        ++census[static_cast<std::size_t>(zone.condition)];
    return census;
}

} // namespace logseek::disk
