/**
 * @file
 * Disk-head position tracking and seek detection.
 *
 * This implements the paper's seek definition (§II): a seek occurs
 * iff an I/O operation starts at a sector other than the one
 * immediately following the previous I/O operation, and is a read or
 * write seek according to the type of the second operation. Seek
 * distance is the signed byte offset from the expected next sector
 * to the start of the new operation.
 */

#ifndef LOGSEEK_DISK_HEAD_H
#define LOGSEEK_DISK_HEAD_H

#include <cstdint>

#include "trace/record.h"
#include "util/extent.h"

namespace logseek::disk
{

/** Outcome of one media access. */
struct SeekInfo
{
    /** True if the access required a seek. */
    bool seeked = false;

    /**
     * Signed distance in bytes from the sector following the
     * previous access to the first sector of this access; 0 when no
     * seek occurred.
     */
    std::int64_t distanceBytes = 0;

    /** Type of the access (classifies the seek). */
    trace::IoType type = trace::IoType::Read;

    bool operator==(const SeekInfo &) const = default;
};

/**
 * Tracks the sector following the most recent media access.
 *
 * The head starts as if the previous I/O ended at sector 0, so the
 * very first access seeks unless it starts at sector 0; this
 * convention is applied identically to every translation variant and
 * therefore cancels in all seek-amplification ratios.
 */
class DiskHead
{
  public:
    /**
     * Perform one media access covering extent.
     *
     * @param extent Physical sector range accessed.
     * @param type Whether this access is a read or a write.
     * @return Seek classification for this access.
     */
    SeekInfo access(const SectorExtent &extent, trace::IoType type);

    /**
     * Pure seek classification against an explicit head position —
     * access() without the state update. Because a chunk of
     * consecutive accesses only depends on the position the head
     * ends the previous chunk at (the end of its last extent),
     * classification of a partitioned access stream is exact:
     * classify each chunk against the end of the preceding chunk's
     * last extent, then fastForward() past the whole stream.
     */
    static SeekInfo classify(std::uint64_t expected_next,
                             const SectorExtent &extent,
                             trace::IoType type);

    /**
     * Advance the head as if `accesses` accesses were performed, the
     * last of which ended at `expected_next`. Pairs with classify()
     * when accesses were classified out-of-band.
     */
    void fastForward(std::uint64_t expected_next,
                     std::uint64_t accesses);

    /** Sector the next access must start at to avoid a seek. */
    std::uint64_t expectedNext() const { return expectedNext_; }

    /** Total accesses performed. */
    std::uint64_t accessCount() const { return accessCount_; }

    /** Reset to the initial parked-at-zero state. */
    void reset();

  private:
    std::uint64_t expectedNext_ = 0;
    std::uint64_t accessCount_ = 0;
};

} // namespace logseek::disk

#endif // LOGSEEK_DISK_HEAD_H
