/**
 * @file
 * Analytic seek-time model.
 *
 * The paper's primary metric is seek *count*, but §III discusses how
 * seek cost varies with length: very short seeks (100s of KB) cost
 * only the rotational delay of skipping the intervening sectors;
 * longer seeks pay head movement (a few ms growing to ~25 ms) plus
 * an average half rotation; and backward seeks to the immediately
 * preceding sectors cost a missed (full) rotation. This model turns
 * seek distances into estimated service time so experiments can
 * report time-weighted amplification alongside counts.
 */

#ifndef LOGSEEK_DISK_SEEK_TIME_H
#define LOGSEEK_DISK_SEEK_TIME_H

#include <cstdint>

namespace logseek::disk
{

/** Parameters for the analytic seek-time model. */
struct SeekTimeParams
{
    /** Sustained media transfer rate (bytes/s). */
    double transferBytesPerSec = 180.0e6;

    /** Spindle speed (rotations per second); 7200 rpm default. */
    double rotationsPerSec = 120.0;

    /** Distances at or below this are "short" (skip-read cost). */
    std::uint64_t shortSeekBytes = 500 * 1024;

    /** Minimum head-move time for a long seek (seconds). */
    double minHeadMoveSec = 1.0e-3;

    /** Maximum (full-stroke) head-move time (seconds). */
    double maxHeadMoveSec = 25.0e-3;

    /** Distance considered a full stroke (bytes). */
    double fullStrokeBytes = 8.0e12;
};

/**
 * Estimate the time cost of one seek.
 *
 * Short forward seeks cost the transfer-equivalent of the skipped
 * bytes; short backward seeks cost a missed rotation; long seeks pay
 * sqrt-law head movement (between minHeadMoveSec and maxHeadMoveSec)
 * plus an average half rotation.
 */
class SeekTimeModel
{
  public:
    explicit SeekTimeModel(const SeekTimeParams &params = {});

    /**
     * @param distance_bytes Signed seek distance (0 means no seek).
     * @return Estimated positioning time in seconds.
     */
    double seekSeconds(std::int64_t distance_bytes) const;

    /** Transfer time for n bytes at the sustained rate. */
    double transferSeconds(std::uint64_t bytes) const;

    /** Duration of one full rotation in seconds. */
    double rotationSeconds() const;

    const SeekTimeParams &params() const { return params_; }

  private:
    SeekTimeParams params_;
};

} // namespace logseek::disk

#endif // LOGSEEK_DISK_SEEK_TIME_H
