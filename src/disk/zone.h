/**
 * @file
 * SMR zone state machine (ZBC-style).
 *
 * Real SMR drives are not a flat address space: they expose zones
 * with a type (conventional, sequential-write-preferred,
 * sequential-write-required), a condition (EMPTY, IMPLICIT_OPEN,
 * EXPLICIT_OPEN, CLOSED, FULL, READ_ONLY, OFFLINE), a per-zone
 * write pointer, and a bound on how many zones may be open at once.
 * ZoneSet models exactly that contract: every zone-management op
 * (open/close/finish/reset) and every write is checked against the
 * current condition, and each illegal pairing returns a typed
 * Status from the device error taxonomy below — never a crash, so
 * fault sweeps can drive the machine through every corner.
 *
 * The set covers [0, ∞) in uniform zones and grows on demand, which
 * matches the paper's infinite-disk model: the log-structured
 * frontier can march forever and always finds a zone under it.
 */

#ifndef LOGSEEK_DISK_ZONE_H
#define LOGSEEK_DISK_ZONE_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/extent.h"
#include "util/status.h"
#include "util/units.h"

namespace logseek::disk
{

/** ZBC zone types. */
enum class ZoneType : std::uint8_t
{
    /** Random writes allowed; no write pointer is maintained. */
    Conventional,

    /** Sequential writes preferred; out-of-policy writes succeed
     *  but are counted (host-aware SMR). */
    SequentialWritePreferred,

    /** Writes must land exactly at the write pointer (host-managed
     *  SMR); anything else is a typed error. */
    SequentialWriteRequired,
};

/** ZBC zone conditions. */
enum class ZoneCondition : std::uint8_t
{
    Empty = 0,
    ImplicitOpen,
    ExplicitOpen,
    Closed,
    Full,
    ReadOnly, ///< grown defect: data readable, writes refused
    Offline,  ///< media gone: reads and writes both refused
};

/** Number of ZoneCondition values (census array size). */
constexpr std::size_t kZoneConditionCount = 7;

/** Printable name of a ZoneType ("conv", "swp", "swr"). */
const char *toString(ZoneType type);

/** Printable name of a ZoneCondition ("empty", "full", ...). */
const char *toString(ZoneCondition condition);

/**
 * The device error taxonomy, layered on util/status.h: each value
 * maps to a canonical StatusCode chosen so the existing retry and
 * sweep machinery classifies it correctly (only transient media
 * errors are retryable).
 */
enum class DeviceErrc : std::uint8_t
{
    /** A write missed the zone's write pointer (SWR). */
    WritePointerViolation,

    /** Open-zone limit reached and nothing implicitly open to
     *  evict. */
    TooManyOpenZones,

    /** A write touched a READ_ONLY zone (grown defect). */
    ZoneReadOnly,

    /** Any I/O touched an OFFLINE zone. */
    ZoneOffline,

    /** A zone-management op is undefined for the zone's
     *  (type, condition) pair. */
    InvalidTransition,

    /** A transient media error; the same read may succeed on
     *  retry. */
    TransientMediaError,

    /** A persistent grown defect; retries cannot help. */
    GrownDefect,

    /** The device lost power mid-operation; everything after the
     *  flushed prefix is gone and the device is dead until it is
     *  re-opened (a new ZonedDevice) and the host remounts. */
    PowerLoss,
};

/** Printable name of a DeviceErrc ("WP_VIOLATION", ...). */
const char *toString(DeviceErrc errc);

/**
 * The canonical StatusCode a DeviceErrc surfaces as:
 * TransientMediaError → Unavailable (retryable), GrownDefect /
 * ZoneOffline / PowerLoss → DataLoss (non-retryable, so sweep
 * retry machinery never re-runs a deterministic crash), TooMany-
 * OpenZones → ResourceExhausted, everything else →
 * FailedPrecondition.
 */
StatusCode statusCodeOf(DeviceErrc errc);

/** A typed device error: "[WP_VIOLATION] zone 3: ..." */
Status deviceError(DeviceErrc errc, const std::string &message);

/** True when the status carries the given taxonomy tag. */
bool isDeviceError(const Status &status, DeviceErrc errc);

/** One zone's state. Sectors are absolute device addresses. */
struct Zone
{
    std::uint64_t start = 0;
    SectorCount capacity = 0;
    std::uint64_t writePointer = 0;
    ZoneType type = ZoneType::SequentialWriteRequired;
    ZoneCondition condition = ZoneCondition::Empty;

    /** Monotonic stamp of the last open (LRU implicit close). */
    std::uint64_t openStamp = 0;

    /** One past the last sector of the zone. */
    std::uint64_t end() const { return start + capacity; }

    /** The zone as a sector extent. */
    SectorExtent extent() const { return {start, capacity}; }

    bool
    open() const
    {
        return condition == ZoneCondition::ImplicitOpen ||
               condition == ZoneCondition::ExplicitOpen;
    }
};

/** Geometry and policy of a zone set. */
struct ZoneLayout
{
    /** Uniform zone size; must be > 0. */
    SectorCount zoneSectors = bytesToSectors(256ULL << 20);

    /** Type applied to every zone. */
    ZoneType type = ZoneType::SequentialWriteRequired;

    /** Max zones in IMPLICIT_OPEN or EXPLICIT_OPEN at once. */
    std::uint32_t maxOpenZones = 8;

    /**
     * Sector where the uniform grid begins. When > 0, one leading
     * zone of exactly this capacity covers [0, anchorSector) and
     * zones of zoneSectors follow from there. Lets the grid line
     * up with a translation layer's log region (which starts at
     * the end of the identity region, rarely a zone multiple), so
     * segment reuse lands on zone starts instead of mid-zone.
     */
    std::uint64_t anchorSector = 0;
};

/**
 * The zone state machine. All mutating entry points return a typed
 * Status and leave the machine unchanged on error, so a caller can
 * probe illegal (type × condition × op) pairs without corrupting
 * state. Not thread-safe: one ZoneSet belongs to one replay.
 */
class ZoneSet
{
  public:
    explicit ZoneSet(const ZoneLayout &layout);

    const ZoneLayout &layout() const { return layout_; }
    std::size_t size() const { return zones_.size(); }
    const Zone &zone(std::size_t index) const;

    /** Index of the zone containing `sector`, growing the set so
     *  the zone exists. */
    std::size_t zoneIndexOf(std::uint64_t sector);

    /** Grow the set until [0, end_sector) is covered. */
    void ensureCovers(std::uint64_t end_sector);

    /**
     * Mark [0, end_sector) as already written (the identity region
     * that exists before the replay starts): covered sequential
     * zones become FULL, a partially covered one CLOSED with its
     * write pointer at end_sector. Conventional zones have no write
     * pointer and are untouched.
     */
    void fillTo(std::uint64_t end_sector);

    /**
     * Open a zone (ZBC OPEN ZONE when `explicit_open`, otherwise
     * the implicit open a write performs). May implicitly close the
     * least recently opened IMPLICIT_OPEN zone to stay within the
     * open limit; fails TooManyOpenZones when nothing can be
     * evicted.
     */
    Status open(std::size_t index, bool explicit_open);

    /** ZBC CLOSE ZONE: open → CLOSED (EMPTY when nothing written). */
    Status close(std::size_t index);

    /** ZBC FINISH ZONE: write pointer to the end, condition FULL. */
    Status finish(std::size_t index);

    /** ZBC RESET WRITE POINTER: back to EMPTY. */
    Status reset(std::size_t index);

    /**
     * A media write of `piece`, which must lie entirely inside the
     * zone (callers split at zone boundaries). Enforces the zone
     * type's write policy, implicitly opening the zone as needed.
     */
    Status write(std::size_t index, const SectorExtent &piece);

    /** Policy check for a read of `piece` (OFFLINE zones refuse). */
    Status checkRead(std::size_t index,
                     const SectorExtent &piece) const;

    /**
     * Fault injection: force a condition (grown defect flipping a
     * zone READ_ONLY/OFFLINE). Open-slot accounting stays correct.
     */
    void forceCondition(std::size_t index, ZoneCondition condition);

    /**
     * Fault injection / recovery: move the write pointer to
     * `sector` (clamped into the zone). A FULL zone whose pointer
     * moves back becomes CLOSED.
     */
    void moveWritePointer(std::size_t index, std::uint64_t sector);

    /** Zones currently IMPLICIT_OPEN or EXPLICIT_OPEN. */
    std::uint32_t openZones() const { return openCount_; }

    /** Successful reset ops over the set's lifetime. */
    std::uint64_t resets() const { return resets_; }

    /** Implicit closes forced by the open-zone limit. */
    std::uint64_t implicitCloses() const { return implicitCloses_; }

    /** Out-of-policy (non-sequential) writes absorbed by SWP
     *  zones. */
    std::uint64_t outOfPolicyWrites() const
    {
        return outOfPolicyWrites_;
    }

    /** Zone count per condition, indexed by ZoneCondition. */
    std::array<std::uint64_t, kZoneConditionCount>
    conditionCensus() const;

  private:
    Zone &zoneAt(std::size_t index);

    /** Move a zone to `next`, keeping openCount_ consistent. */
    void setCondition(Zone &zone, ZoneCondition next);

    /**
     * Take an open slot, implicitly closing the LRU IMPLICIT_OPEN
     * zone when the set is at its limit. TooManyOpenZones when
     * every open zone is explicitly open.
     */
    Status acquireOpenSlot();

    ZoneLayout layout_;
    std::vector<Zone> zones_;
    std::uint32_t openCount_ = 0;
    std::uint64_t clock_ = 0;
    std::uint64_t resets_ = 0;
    std::uint64_t implicitCloses_ = 0;
    std::uint64_t outOfPolicyWrites_ = 0;
};

} // namespace logseek::disk

#endif // LOGSEEK_DISK_ZONE_H
