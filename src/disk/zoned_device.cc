#include "zoned_device.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/logging.h"

namespace logseek::disk
{

namespace
{

/** splitmix64 finalizer: the pure per-sector fault hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from a hash. */
double
u01(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Domain-separation constants: each fault question asks an
// independent hash of the same (seed, sector) pair.
constexpr std::uint64_t kGrownSalt = 0x67726f776e646566ULL;
constexpr std::uint64_t kTransientSalt = 0x7472616e7369656eULL;
constexpr std::uint64_t kRetriesSalt = 0x7265747269657321ULL;
constexpr std::uint64_t kOfflineSalt = 0x6f66666c696e6521ULL;
constexpr std::uint64_t kDivergeSalt = 0x6469766572676521ULL;
constexpr std::uint64_t kCrashSalt = 0x706f7765726c6f73ULL;

std::uint32_t
clampToU32(std::uint64_t n)
{
    return n > UINT32_MAX ? UINT32_MAX
                          : static_cast<std::uint32_t>(n);
}

} // namespace

ZonedDevice::ZonedDevice(const ZoneLayout &layout,
                         const ZonedDeviceOptions &options,
                         CancelToken cancel)
    : options_(options), zones_(layout), cancel_(std::move(cancel)),
      rng_(options.faults.seed), errorLog_(options.errorLogCap)
{
    panicIf(options.errorLogCap == 0,
            "ZonedDevice: errorLogCap must be >= 1");
    auto &registry = telemetry::Registry::global();
    readRetries_ =
        &registry.counter("device_read_retries_total");
    zoneResets_ = &registry.counter("device_zone_resets_total");
    wpViolations_ =
        &registry.counter("device_wp_violations_total");
    mediaErrorsTransient_ = &registry.counter(
        "device_media_errors_total", "kind=\"transient\"");
    mediaErrorsGrown_ = &registry.counter(
        "device_media_errors_total", "kind=\"grown\"");
    crashes_ = &registry.counter("device_crashes_total");
    recoveryLatency_ =
        &registry.histogram("device_recovery_latency_ns");
}

void
ZonedDevice::checkAlive() const
{
    if (dead_)
        throw StatusError(deviceError(
            DeviceErrc::PowerLoss,
            "device lost power at write op " +
                std::to_string(
                    options_.crash.crashAtWriteOp) +
                " and has not been re-opened"));
}

void
ZonedDevice::fillTo(std::uint64_t end_sector)
{
    zones_.fillTo(end_sector);
}

ZonedDevice::SectorFault
ZonedDevice::classifySector(std::uint64_t sector) const
{
    const DeviceFaultConfig &f = options_.faults;
    const std::uint64_t h = mix64(options_.faults.seed ^ sector);
    if (f.grownRate > 0.0 &&
        u01(mix64(h ^ kGrownSalt)) < f.grownRate)
        return SectorFault::Grown;
    if (f.transientRate > 0.0 &&
        u01(mix64(h ^ kTransientSalt)) < f.transientRate)
        return SectorFault::Transient;
    return SectorFault::Good;
}

std::uint32_t
ZonedDevice::requiredRetries(std::uint64_t sector) const
{
    const std::uint32_t span = static_cast<std::uint32_t>(
        std::max(options_.faults.maxTransientRetries, 1));
    const std::uint64_t h =
        mix64(options_.faults.seed ^ sector ^ kRetriesSalt);
    return 1 + static_cast<std::uint32_t>(h % span);
}

bool
ZonedDevice::defectGoesOffline(std::uint64_t sector) const
{
    const std::uint64_t h =
        mix64(options_.faults.seed ^ sector ^ kOfflineSalt);
    return u01(h) < options_.faults.offlineShare;
}

std::pair<std::uint32_t, bool>
ZonedDevice::recoverSector(std::uint64_t sector,
                           std::int32_t required)
{
    const telemetry::ScopedTimer timer(recoveryLatency_);
    // Retries are reported the moment they begin (RetrySession's
    // contract), so a deadline firing mid-backoff still leaves the
    // in-flight attempt visible in device_read_retries_total.
    RetrySession session(
        options_.recovery, rng_, cancel_, [this](int attempt) {
            if (attempt > 1)
                readRetries_->add();
        });
    for (;;) {
        const int attempt = session.beginAttempt();
        if (required >= 0 && attempt > required)
            return {static_cast<std::uint32_t>(attempt - 1),
                    true};
        if (session.exhausted())
            return {static_cast<std::uint32_t>(attempt - 1),
                    false};
        const Status slept = session.backoff(
            "device recovery of sector " +
            std::to_string(sector));
        if (!slept.ok())
            throw StatusError(slept);
    }
}

void
ZonedDevice::discoverDefect(std::size_t index,
                            std::uint64_t sector)
{
    knownDefects_.insert(sector);
    ++stats_.grownDefects;
    const ZoneCondition current = zones_.zone(index).condition;
    if (current == ZoneCondition::Offline)
        return;
    // A grown defect degrades its whole zone: OFFLINE for the
    // severe share, READ_ONLY (data still readable) otherwise.
    zones_.forceCondition(index, defectGoesOffline(sector)
                                     ? ZoneCondition::Offline
                                     : ZoneCondition::ReadOnly);
}

DeviceReadResult
ZonedDevice::readPiece(std::size_t index,
                       const SectorExtent &piece)
{
    DeviceReadResult out;
    const Status readable = zones_.checkRead(index, piece);
    if (!readable.ok()) {
        out.failedSectors += clampToU32(piece.count);
        errorLog_.append({piece.start, 0, readable});
        return out;
    }
    const DeviceFaultConfig &f = options_.faults;
    if (f.transientRate <= 0.0 && f.grownRate <= 0.0)
        return out;

    for (std::uint64_t sector = piece.start;
         sector < piece.end(); ++sector) {
        // A defect discovered earlier in this very piece may have
        // taken the zone offline; the rest of the piece is lost.
        if (zones_.zone(index).condition ==
            ZoneCondition::Offline) {
            ++out.failedSectors;
            continue;
        }
        const SectorFault fault = classifySector(sector);
        if (fault == SectorFault::Good)
            continue;
        if (knownDefects_.contains(sector)) {
            // Known-bad: fail fast, no pointless retries.
            ++out.failedSectors;
            continue;
        }
        if (fault == SectorFault::Transient) {
            mediaErrorsTransient_->add();
            const auto [retries, recovered] = recoverSector(
                sector, static_cast<std::int32_t>(
                            requiredRetries(sector)));
            out.retries += retries;
            if (recovered) {
                ++out.recoveredSectors;
                errorLog_.append({sector, retries, Status()});
            } else {
                ++out.failedSectors;
                errorLog_.append(
                    {sector, retries,
                     deviceError(
                         DeviceErrc::TransientMediaError,
                         "sector " + std::to_string(sector) +
                             " unrecovered after " +
                             std::to_string(retries) +
                             " retries")});
            }
        } else {
            mediaErrorsGrown_->add();
            const auto [retries, recovered] =
                recoverSector(sector, -1);
            (void)recovered;
            out.retries += retries;
            ++out.failedSectors;
            errorLog_.append(
                {sector, retries,
                 deviceError(DeviceErrc::GrownDefect,
                             "sector " +
                                 std::to_string(sector) +
                                 " is a grown defect")});
            discoverDefect(index, sector);
        }
    }
    return out;
}

DeviceReadResult
ZonedDevice::read(const SectorExtent &extent)
{
    checkAlive();
    DeviceReadResult out;
    if (extent.empty())
        return out;
    zones_.ensureCovers(extent.end());
    for (std::uint64_t sector = extent.start;
         sector < extent.end();) {
        const std::size_t index = zones_.zoneIndexOf(sector);
        const std::uint64_t piece_end =
            std::min(extent.end(), zones_.zone(index).end());
        const DeviceReadResult piece =
            readPiece(index, {sector, piece_end - sector});
        out.retries += piece.retries;
        out.recoveredSectors += piece.recoveredSectors;
        out.failedSectors += piece.failedSectors;
        sector = piece_end;
    }
    stats_.readRetries += out.retries;
    stats_.recoveredSectors += out.recoveredSectors;
    stats_.failedReadSectors += out.failedSectors;
    if (out.degraded())
        ++stats_.degradedReads;
    return out;
}

DeviceWriteResult
ZonedDevice::writePiece(std::size_t index,
                        const SectorExtent &piece)
{
    DeviceWriteResult out;
    const Zone &zone = zones_.zone(index);

    // A write rewinding to the start of a used sequential zone is
    // how the log layers reuse a reclaimed segment: model it as
    // RESET WRITE POINTER + write, the way a ZBC host would issue
    // it.
    if (options_.autoResetOnRewind &&
        zone.type != ZoneType::Conventional &&
        piece.start == zone.start &&
        zone.writePointer != zone.start &&
        zones_.reset(index).ok())
        ++out.zoneResets;

    const std::uint64_t policy_before =
        zones_.outOfPolicyWrites();
    Status written = zones_.write(index, piece);
    if (!written.ok() &&
        isDeviceError(written,
                      DeviceErrc::WritePointerViolation)) {
        // Out-of-policy on an SWR zone: recover the way a host
        // does after a zone-report resync — adopt the host's
        // position and continue, counting the violation.
        zones_.moveWritePointer(index, piece.start);
        written = zones_.write(index, piece);
        if (written.ok())
            ++out.wpViolations;
    }
    if (!written.ok()) {
        // READ_ONLY/OFFLINE zone (or no open slot): the write is
        // refused and the data is lost — a counted, typed partial
        // failure, never an abort.
        out.failedSectors += clampToU32(piece.count);
        return out;
    }
    out.outOfPolicy += clampToU32(zones_.outOfPolicyWrites() -
                                  policy_before);
    return out;
}

DeviceWriteResult
ZonedDevice::write(const SectorExtent &extent)
{
    checkAlive();
    DeviceWriteResult out;
    if (extent.empty())
        return out;
    zones_.ensureCovers(extent.end());

    // Scheduled power loss: this very op dies mid-transfer. A
    // seeded prefix of the extent reaches the media (advancing the
    // zone write pointer partway — the torn tail a real drive
    // leaves), the rest is lost, and the device goes dead.
    if (options_.crash.armed() &&
        writeOps_ + 1 == options_.crash.crashAtWriteOp) {
        const std::uint64_t h = mix64(
            options_.crash.seed ^ (writeOps_ + 1) ^ kCrashSalt);
        const SectorCount flushed = h % (extent.count + 1);
        for (std::uint64_t sector = extent.start;
             sector < extent.start + flushed;) {
            const std::size_t index = zones_.zoneIndexOf(sector);
            const std::uint64_t piece_end =
                std::min(extent.start + flushed,
                         zones_.zone(index).end());
            writePiece(index, {sector, piece_end - sector});
            sector = piece_end;
        }
        ++writeOps_;
        dead_ = true;
        ++stats_.crashes;
        crashes_->add();
        throw StatusError(deviceError(
            DeviceErrc::PowerLoss,
            "power lost during write op " +
                std::to_string(writeOps_) + ": " +
                std::to_string(flushed) + " of " +
                std::to_string(extent.count) +
                " sectors reached the media"));
    }

    std::size_t last_index = 0;
    for (std::uint64_t sector = extent.start;
         sector < extent.end();) {
        const std::size_t index = zones_.zoneIndexOf(sector);
        const std::uint64_t piece_end =
            std::min(extent.end(), zones_.zone(index).end());
        const DeviceWriteResult piece =
            writePiece(index, {sector, piece_end - sector});
        out.zoneResets += piece.zoneResets;
        out.wpViolations += piece.wpViolations;
        out.outOfPolicy += piece.outOfPolicy;
        out.failedSectors += piece.failedSectors;
        last_index = index;
        sector = piece_end;
    }

    ++writeOps_;
    const DeviceFaultConfig &f = options_.faults;
    if (f.wpDivergenceRate > 0.0 &&
        u01(mix64(f.seed ^ writeOps_ ^ kDivergeSalt)) <
            f.wpDivergenceRate) {
        // Firmware-side write-pointer drift: the device pointer
        // creeps ahead of the host's view, so the host's next
        // sequential write lands behind it and must be recovered
        // as a violation.
        const Zone &zone = zones_.zone(last_index);
        if (zone.type != ZoneType::Conventional &&
            zone.condition != ZoneCondition::ReadOnly &&
            zone.condition != ZoneCondition::Offline) {
            zones_.moveWritePointer(
                last_index, zone.writePointer +
                                f.wpDivergenceSectors);
            ++out.divergences;
            ++stats_.wpDivergences;
        }
    }

    stats_.zoneResets += out.zoneResets;
    stats_.wpViolations += out.wpViolations;
    stats_.outOfPolicyWrites += out.outOfPolicy;
    stats_.failedWriteSectors += out.failedSectors;
    if (out.zoneResets > 0)
        zoneResets_->add(out.zoneResets);
    if (out.wpViolations > 0)
        wpViolations_->add(out.wpViolations);
    return out;
}

void
ZonedDevice::publishZoneGauges() const
{
    if (!telemetry::enabled())
        return;
    auto &registry = telemetry::Registry::global();
    const auto census = zones_.conditionCensus();
    for (std::size_t i = 0; i < census.size(); ++i) {
        const auto condition = static_cast<ZoneCondition>(i);
        registry
            .gauge("device_zones",
                   "condition=\"" +
                       std::string(toString(condition)) + "\"")
            .set(static_cast<std::int64_t>(census[i]));
    }
    registry.gauge("device_open_zones")
        .set(static_cast<std::int64_t>(zones_.openZones()));
}

} // namespace logseek::disk
