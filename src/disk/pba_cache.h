/**
 * @file
 * A byte-budgeted cache of physical sector ranges.
 *
 * Both read caches in the paper are modeled with this structure: the
 * on-drive prefetch buffer that holds look-ahead/look-behind fetch
 * regions (FIFO replacement, like a drive segment buffer), and the
 * translation-aware selective RAM cache of fragments (LRU
 * replacement, Algorithm 3).
 *
 * Because the simulated disk is infinite, physical sectors are
 * written at most once, so cached ranges can never hold stale data
 * and no invalidation path is required (see DESIGN.md §6).
 */

#ifndef LOGSEEK_DISK_PBA_CACHE_H
#define LOGSEEK_DISK_PBA_CACHE_H

#include <cstdint>
#include <list>
#include <map>

#include "util/extent.h"

namespace logseek::disk
{

/** Replacement policy for PbaRangeCache. */
enum class EvictionPolicy { Lru, Fifo };

/**
 * Cache of non-overlapping physical sector ranges with a byte
 * budget. contains() answers whether a range is fully resident;
 * insert() adds the not-yet-resident portions of a range and evicts
 * until the budget holds.
 */
class PbaRangeCache
{
  public:
    /**
     * @param capacity_bytes Byte budget; 0 disables caching.
     * @param policy Replacement policy.
     */
    PbaRangeCache(std::uint64_t capacity_bytes, EvictionPolicy policy);

    /**
     * True if extent is fully covered by resident ranges. Under LRU
     * the covering entries are refreshed on a full hit. An empty
     * extent is trivially covered.
     */
    bool contains(const SectorExtent &extent);

    /**
     * Make extent resident: uncovered subranges are inserted as
     * fresh entries, then entries are evicted (LRU/FIFO order) until
     * the byte budget holds.
     */
    void insert(const SectorExtent &extent);

    /** Drop all entries. */
    void clear();

    /** Bytes currently resident. */
    std::uint64_t usedBytes() const { return usedBytes_; }

    /** Configured byte budget. */
    std::uint64_t capacityBytes() const { return capacityBytes_; }

    /** Number of resident (non-overlapping) ranges. */
    std::size_t entryCount() const { return byStart_.size(); }

    /** Total entries evicted since construction. */
    std::uint64_t evictionCount() const { return evictions_; }

  private:
    using RecencyList = std::list<SectorExtent>;

    void evictOne();

    std::uint64_t capacityBytes_;
    EvictionPolicy policy_;
    std::uint64_t usedBytes_ = 0;
    std::uint64_t evictions_ = 0;

    /** Front = most recently inserted/refreshed. */
    RecencyList recency_;

    /** Start sector -> entry; entries never overlap. */
    std::map<std::uint64_t, RecencyList::iterator> byStart_;
};

} // namespace logseek::disk

#endif // LOGSEEK_DISK_PBA_CACHE_H
