/**
 * @file
 * A byte-budgeted cache of physical sector ranges.
 *
 * Both read caches in the paper are modeled with this structure: the
 * on-drive prefetch buffer that holds look-ahead/look-behind fetch
 * regions (FIFO replacement, like a drive segment buffer), and the
 * translation-aware selective RAM cache of fragments (LRU
 * replacement, Algorithm 3).
 *
 * Because the simulated disk is infinite, physical sectors are
 * written at most once, so cached ranges can never hold stale data
 * and no invalidation path is required (see DESIGN.md §6).
 *
 * Layout: range nodes come from a chunked pool and are threaded on
 * an intrusive doubly-linked recency list (front = most recent);
 * lookups go through a flat array of node pointers sorted by start
 * sector. Refreshes and evictions are pointer relinks, and the
 * lookup/insert scratch vectors are members, so the steady state
 * performs no heap allocation (the old std::list + std::map design
 * allocated on every insert and eviction).
 */

#ifndef LOGSEEK_DISK_PBA_CACHE_H
#define LOGSEEK_DISK_PBA_CACHE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "util/extent.h"

namespace logseek::disk
{

/** Replacement policy for PbaRangeCache. */
enum class EvictionPolicy { Lru, Fifo };

/**
 * Cache of non-overlapping physical sector ranges with a byte
 * budget. contains() answers whether a range is fully resident;
 * insert() adds the not-yet-resident portions of a range and evicts
 * until the budget holds.
 */
class PbaRangeCache
{
  public:
    /**
     * @param capacity_bytes Byte budget; 0 disables caching.
     * @param policy Replacement policy.
     */
    PbaRangeCache(std::uint64_t capacity_bytes, EvictionPolicy policy);

    PbaRangeCache(const PbaRangeCache &) = delete;
    PbaRangeCache &operator=(const PbaRangeCache &) = delete;

    /**
     * True if extent is fully covered by resident ranges. Under LRU
     * the covering entries are refreshed on a full hit. An empty
     * extent is trivially covered.
     */
    bool contains(const SectorExtent &extent);

    /**
     * Make extent resident: uncovered subranges are inserted as
     * fresh entries, then entries are evicted (LRU/FIFO order) until
     * the byte budget holds.
     */
    void insert(const SectorExtent &extent);

    /** Drop all entries. */
    void clear();

    /** Bytes currently resident. */
    std::uint64_t usedBytes() const { return usedBytes_; }

    /** Configured byte budget. */
    std::uint64_t capacityBytes() const { return capacityBytes_; }

    /** Number of resident (non-overlapping) ranges. */
    std::size_t entryCount() const { return index_.size(); }

    /** Total entries evicted since construction. */
    std::uint64_t evictionCount() const { return evictions_; }

  private:
    /** One resident range, linked into the recency list. `next`
     *  doubles as the free-list link while the node is pooled. */
    struct RangeNode
    {
        SectorExtent extent;
        RangeNode *prev = nullptr;
        RangeNode *next = nullptr;
    };

    /** Link node at the recency front (most recent). */
    void pushFront(RangeNode *node);

    /** Unlink node from the recency list. */
    void unlink(RangeNode *node);

    void moveToFront(RangeNode *node);

    RangeNode *allocNode();
    void freeNode(RangeNode *node);

    /** First index position with entry start >= start. */
    std::size_t indexLowerBound(std::uint64_t start) const;

    void evictOne();

    std::uint64_t capacityBytes_;
    EvictionPolicy policy_;
    std::uint64_t usedBytes_ = 0;
    std::uint64_t evictions_ = 0;

    /** Recency list: head_ = most recent, tail_ = next victim. */
    RangeNode *head_ = nullptr;
    RangeNode *tail_ = nullptr;

    /** Node pointers sorted by extent.start; entries never
     *  overlap. */
    std::vector<RangeNode *> index_;

    /** Chunked node pool with an intrusive free list. */
    static constexpr std::size_t kNodesPerBlock = 64;
    std::vector<std::unique_ptr<RangeNode[]>> blocks_;
    std::size_t blockUsed_ = 0;
    RangeNode *freeList_ = nullptr;

    /** Reusable scratches for contains()/insert(). */
    std::vector<RangeNode *> coveringScratch_;
    std::vector<SectorExtent> missingScratch_;
};

} // namespace logseek::disk

#endif // LOGSEEK_DISK_PBA_CACHE_H
