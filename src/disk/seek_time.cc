#include "seek_time.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace logseek::disk
{

SeekTimeModel::SeekTimeModel(const SeekTimeParams &params)
    : params_(params)
{
    panicIf(params_.transferBytesPerSec <= 0.0,
            "SeekTimeModel: transfer rate must be positive");
    panicIf(params_.rotationsPerSec <= 0.0,
            "SeekTimeModel: rotation rate must be positive");
    panicIf(params_.minHeadMoveSec > params_.maxHeadMoveSec,
            "SeekTimeModel: min head move exceeds max");
}

double
SeekTimeModel::rotationSeconds() const
{
    return 1.0 / params_.rotationsPerSec;
}

double
SeekTimeModel::transferSeconds(std::uint64_t bytes) const
{
    return static_cast<double>(bytes) / params_.transferBytesPerSec;
}

double
SeekTimeModel::seekSeconds(std::int64_t distance_bytes) const
{
    if (distance_bytes == 0)
        return 0.0;

    const auto magnitude = static_cast<std::uint64_t>(
        distance_bytes < 0 ? -distance_bytes : distance_bytes);

    if (magnitude <= params_.shortSeekBytes) {
        if (distance_bytes > 0) {
            // Forward short seek: wait out the skipped sectors.
            return transferSeconds(magnitude);
        }
        // Backward short seek: a missed rotation.
        return rotationSeconds();
    }

    // Long seek: sqrt-law head move, capped at full stroke, plus an
    // average half rotation of rotational latency.
    const double frac = std::min(
        1.0, static_cast<double>(magnitude) / params_.fullStrokeBytes);
    const double head_move =
        params_.minHeadMoveSec +
        (params_.maxHeadMoveSec - params_.minHeadMoveSec) *
            std::sqrt(frac);
    return head_move + 0.5 * rotationSeconds();
}

} // namespace logseek::disk
