#include "pba_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace logseek::disk
{

PbaRangeCache::PbaRangeCache(std::uint64_t capacity_bytes,
                             EvictionPolicy policy)
    : capacityBytes_(capacity_bytes), policy_(policy)
{
}

void
PbaRangeCache::pushFront(RangeNode *node)
{
    node->prev = nullptr;
    node->next = head_;
    if (head_ != nullptr)
        head_->prev = node;
    head_ = node;
    if (tail_ == nullptr)
        tail_ = node;
}

void
PbaRangeCache::unlink(RangeNode *node)
{
    if (node->prev != nullptr)
        node->prev->next = node->next;
    else
        head_ = node->next;
    if (node->next != nullptr)
        node->next->prev = node->prev;
    else
        tail_ = node->prev;
    node->prev = nullptr;
    node->next = nullptr;
}

void
PbaRangeCache::moveToFront(RangeNode *node)
{
    if (head_ == node)
        return;
    unlink(node);
    pushFront(node);
}

PbaRangeCache::RangeNode *
PbaRangeCache::allocNode()
{
    if (freeList_ != nullptr) {
        RangeNode *node = freeList_;
        freeList_ = node->next;
        node->prev = nullptr;
        node->next = nullptr;
        return node;
    }
    if (blockUsed_ == blocks_.size() * kNodesPerBlock)
        blocks_.push_back(
            std::make_unique<RangeNode[]>(kNodesPerBlock));
    RangeNode *node = &blocks_[blockUsed_ / kNodesPerBlock]
                             [blockUsed_ % kNodesPerBlock];
    ++blockUsed_;
    return node;
}

void
PbaRangeCache::freeNode(RangeNode *node)
{
    node->prev = nullptr;
    node->next = freeList_;
    freeList_ = node;
}

std::size_t
PbaRangeCache::indexLowerBound(std::uint64_t start) const
{
    const auto it = std::lower_bound(
        index_.begin(), index_.end(), start,
        [](const RangeNode *node, std::uint64_t key) {
            return node->extent.start < key;
        });
    return static_cast<std::size_t>(it - index_.begin());
}

bool
PbaRangeCache::contains(const SectorExtent &extent)
{
    if (extent.empty())
        return true;

    // Collect the entries overlapping extent, left to right, and
    // check they tile it without gaps.
    coveringScratch_.clear();
    std::uint64_t cursor = extent.start;

    // Start at the last entry with start <= extent.start (it may
    // cover the range's head), like map::upper_bound then --it.
    std::size_t i = indexLowerBound(extent.start + 1);
    if (i > 0)
        --i;
    for (; i < index_.size() &&
           index_[i]->extent.start < extent.end();
         ++i) {
        const SectorExtent &entry = index_[i]->extent;
        if (entry.end() <= cursor)
            continue;
        if (entry.start > cursor)
            return false; // gap before this entry
        coveringScratch_.push_back(index_[i]);
        cursor = entry.end();
        if (cursor >= extent.end())
            break;
    }
    if (cursor < extent.end())
        return false;

    if (policy_ == EvictionPolicy::Lru) {
        for (RangeNode *node : coveringScratch_)
            moveToFront(node);
    }
    return true;
}

void
PbaRangeCache::insert(const SectorExtent &extent)
{
    if (extent.empty() || capacityBytes_ == 0)
        return;

    // Find the uncovered subranges of extent.
    missingScratch_.clear();
    std::uint64_t cursor = extent.start;

    std::size_t i = indexLowerBound(extent.start + 1);
    if (i > 0)
        --i;
    for (; i < index_.size() &&
           index_[i]->extent.start < extent.end();
         ++i) {
        const SectorExtent &entry = index_[i]->extent;
        if (entry.end() <= cursor)
            continue;
        if (entry.start > cursor)
            missingScratch_.push_back(
                {cursor, entry.start - cursor});
        cursor = std::max(cursor, entry.end());
        if (cursor >= extent.end())
            break;
    }
    if (cursor < extent.end())
        missingScratch_.push_back({cursor, extent.end() - cursor});

    for (const auto &piece : missingScratch_) {
        RangeNode *node = allocNode();
        node->extent = piece;
        pushFront(node);
        index_.insert(index_.begin() +
                          static_cast<std::ptrdiff_t>(
                              indexLowerBound(piece.start)),
                      node);
        usedBytes_ += piece.bytes();
    }

    while (usedBytes_ > capacityBytes_ && tail_ != nullptr)
        evictOne();
}

void
PbaRangeCache::evictOne()
{
    panicIf(tail_ == nullptr, "PbaRangeCache::evictOne: cache empty");
    RangeNode *victim = tail_;
    const SectorExtent extent = victim->extent;

    const std::size_t pos = indexLowerBound(extent.start);
    panicIf(pos >= index_.size() || index_[pos] != victim,
            "PbaRangeCache: index out of sync");
    index_.erase(index_.begin() +
                 static_cast<std::ptrdiff_t>(pos));

    panicIf(usedBytes_ < extent.bytes(),
            "PbaRangeCache: byte accounting underflow");
    usedBytes_ -= extent.bytes();
    unlink(victim);
    freeNode(victim);
    ++evictions_;
}

void
PbaRangeCache::clear()
{
    RangeNode *node = head_;
    while (node != nullptr) {
        RangeNode *next = node->next;
        freeNode(node);
        node = next;
    }
    head_ = nullptr;
    tail_ = nullptr;
    index_.clear();
    usedBytes_ = 0;
}

} // namespace logseek::disk
