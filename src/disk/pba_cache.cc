#include "pba_cache.h"

#include <vector>

#include "util/logging.h"

namespace logseek::disk
{

PbaRangeCache::PbaRangeCache(std::uint64_t capacity_bytes,
                             EvictionPolicy policy)
    : capacityBytes_(capacity_bytes), policy_(policy)
{
}

bool
PbaRangeCache::contains(const SectorExtent &extent)
{
    if (extent.empty())
        return true;

    // Collect the entries overlapping extent, left to right, and
    // check they tile it without gaps.
    std::vector<RecencyList::iterator> covering;
    std::uint64_t cursor = extent.start;

    auto it = byStart_.upper_bound(extent.start);
    if (it != byStart_.begin())
        --it;
    for (; it != byStart_.end() && it->first < extent.end(); ++it) {
        const SectorExtent &entry = *it->second;
        if (entry.end() <= cursor)
            continue;
        if (entry.start > cursor)
            return false; // gap before this entry
        covering.push_back(it->second);
        cursor = entry.end();
        if (cursor >= extent.end())
            break;
    }
    if (cursor < extent.end())
        return false;

    if (policy_ == EvictionPolicy::Lru) {
        for (auto entry_it : covering)
            recency_.splice(recency_.begin(), recency_, entry_it);
    }
    return true;
}

void
PbaRangeCache::insert(const SectorExtent &extent)
{
    if (extent.empty() || capacityBytes_ == 0)
        return;

    // Find the uncovered subranges of extent.
    std::vector<SectorExtent> missing;
    std::uint64_t cursor = extent.start;

    auto it = byStart_.upper_bound(extent.start);
    if (it != byStart_.begin())
        --it;
    for (; it != byStart_.end() && it->first < extent.end(); ++it) {
        const SectorExtent &entry = *it->second;
        if (entry.end() <= cursor)
            continue;
        if (entry.start > cursor)
            missing.push_back({cursor, entry.start - cursor});
        cursor = std::max(cursor, entry.end());
        if (cursor >= extent.end())
            break;
    }
    if (cursor < extent.end())
        missing.push_back({cursor, extent.end() - cursor});

    for (const auto &piece : missing) {
        recency_.push_front(piece);
        byStart_.emplace(piece.start, recency_.begin());
        usedBytes_ += piece.bytes();
    }

    while (usedBytes_ > capacityBytes_ && !recency_.empty())
        evictOne();
}

void
PbaRangeCache::evictOne()
{
    panicIf(recency_.empty(), "PbaRangeCache::evictOne: cache empty");
    const SectorExtent victim = recency_.back();
    recency_.pop_back();
    const auto erased = byStart_.erase(victim.start);
    panicIf(erased != 1, "PbaRangeCache: index out of sync");
    panicIf(usedBytes_ < victim.bytes(),
            "PbaRangeCache: byte accounting underflow");
    usedBytes_ -= victim.bytes();
    ++evictions_;
}

void
PbaRangeCache::clear()
{
    recency_.clear();
    byStart_.clear();
    usedBytes_ = 0;
}

} // namespace logseek::disk
