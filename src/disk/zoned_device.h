/**
 * @file
 * Zoned block device front: sequential-write policy enforcement
 * plus seeded, deterministic media-fault injection.
 *
 * ZonedDevice is the narrow seam between the translation layers and
 * the zone state machine: every media access the replay performs is
 * mirrored through read()/write(), so log appends advance real
 * write pointers and reads traverse (possibly faulty) media. Faults
 * follow util/fault's discipline — pure and seeded. Whether a
 * sector is bad is a hash of (seed, sector), never a draw from a
 * shared stream, so the fault set is identical whatever order the
 * sweep visits cells in: equal seeds give equal defect maps across
 * --jobs 1 / --jobs 4 and across checkpoint/resume.
 *
 * Failure semantics mirror a real drive's: transient bad sectors
 * recover after a bounded number of retried reads (util/retry.h
 * backoff, cancellation-aware so deadlines fire mid-recovery);
 * grown defects never recover and flip their zone READ_ONLY or
 * OFFLINE; reads that exhaust the retry budget surface as counted
 * degraded results — typed partial failures the replay accounts
 * for instead of aborting the cell.
 */

#ifndef LOGSEEK_DISK_ZONED_DEVICE_H
#define LOGSEEK_DISK_ZONED_DEVICE_H

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "disk/zone.h"
#include "telemetry/metrics.h"
#include "util/cancellation.h"
#include "util/extent.h"
#include "util/random.h"
#include "util/retry.h"
#include "util/status.h"

namespace logseek::disk
{

/**
 * Seeded media-fault policy. All rates are per-sector (or per
 * write op for divergence) probabilities in [0, 1]; with every
 * rate at zero the device never touches the fault path.
 */
struct DeviceFaultConfig
{
    /** Seed of the defect map; equal seeds, equal faults. */
    std::uint64_t seed = 0xbad5ec70ULL;

    /** P(sector needs retries before a read succeeds). */
    double transientRate = 0.0;

    /** A transient sector recovers after 1..maxTransientRetries
     *  retries (seeded per sector). */
    int maxTransientRetries = 2;

    /** P(sector is a persistent grown defect). */
    double grownRate = 0.0;

    /** Share of grown defects that take the whole zone OFFLINE
     *  (the rest flip it READ_ONLY). */
    double offlineShare = 0.25;

    /** P(a media write op is followed by write-pointer
     *  divergence: the device pointer drifts ahead of the
     *  host's). */
    double wpDivergenceRate = 0.0;

    /** How far a divergence moves the pointer. */
    SectorCount wpDivergenceSectors = 8;

    /** True when any fault class is armed. */
    bool
    any() const
    {
        return transientRate > 0.0 || grownRate > 0.0 ||
               wpDivergenceRate > 0.0;
    }
};

/**
 * Seeded power-loss schedule. When armed, the crashAtWriteOp-th
 * media write op kills the device mid-transfer: a seeded prefix of
 * the extent reaches the media (so the zone write pointer stops
 * partway through the op — a torn tail, with the host's view of the
 * pointer now stale), the op throws StatusError(POWER_LOSS →
 * DataLoss), and every subsequent access fails the same way until
 * the host builds a fresh device and remounts. Like the fault
 * model, the torn length is a pure hash of (seed, op), so equal
 * seeds crash identically across --jobs and checkpoint/resume.
 */
struct CrashSchedule
{
    /** 1-based media-write-op index that dies; 0 = never. */
    std::uint64_t crashAtWriteOp = 0;

    /** Seed of the torn-tail length draw. */
    std::uint64_t seed = 0x70776c055ULL;

    bool armed() const { return crashAtWriteOp > 0; }
};

/** Full device configuration (geometry comes from ZoneLayout). */
struct ZonedDeviceOptions
{
    /** Zone size in bytes; 0 lets the replay engine pick a size
     *  matched to the translation layer's structure. */
    std::uint64_t zoneBytes = 0;

    /** Open-zone limit. */
    std::uint32_t maxOpenZones = 8;

    /**
     * Treat a write landing exactly at the start of a non-empty
     * sequential zone as RESET + write (how a log layer reuses a
     * reclaimed segment) instead of a write-pointer violation.
     */
    bool autoResetOnRewind = true;

    /** Media-fault injection policy. */
    DeviceFaultConfig faults;

    /** Power-loss schedule; disarmed by default. */
    CrashSchedule crash;

    /**
     * Bound of the read-error log (entries kept before counting
     * drops); must be >= 1. Defaults to ReadErrorLog::kMaxEntries
     * so existing configurations keep their capping behavior.
     */
    std::size_t errorLogCap = 256;

    /**
     * Read-recovery budget: attempts and backoff for retried
     * sector reads. Backoff affects wall-clock only, never
     * results.
     */
    RetryPolicy recovery{.maxAttempts = 4,
                         .initialBackoff =
                             std::chrono::milliseconds(0),
                         .multiplier = 2.0,
                         .maxBackoff =
                             std::chrono::milliseconds(5),
                         .jitter = 0.5};
};

/**
 * One recovery episode, in the spirit of a drive's SMART error
 * log: which sector, how many retries it took, and the final
 * status (OK after recovery, or the typed failure).
 */
struct ReadErrorEntry
{
    std::uint64_t sector = 0;
    std::uint32_t retries = 0;
    Status status;
};

/**
 * Bounded per-device log of read-error episodes. Keeps the first
 * `cap` entries (the interesting ones for triage) and counts the
 * rest, so a high fault rate cannot balloon memory. The drop count
 * is surfaced in SimResult/reports rather than silently capping.
 */
class ReadErrorLog
{
  public:
    /** Default bound (ZonedDeviceOptions::errorLogCap overrides). */
    static constexpr std::size_t kMaxEntries = 256;

    explicit ReadErrorLog(std::size_t cap = kMaxEntries)
        : cap_(cap == 0 ? 1 : cap)
    {
    }

    void
    append(ReadErrorEntry entry)
    {
        if (entries_.size() < cap_)
            entries_.push_back(std::move(entry));
        else
            ++dropped_;
    }

    const std::deque<ReadErrorEntry> &entries() const
    {
        return entries_;
    }

    std::size_t cap() const { return cap_; }

    std::uint64_t dropped() const { return dropped_; }

  private:
    std::size_t cap_;
    std::deque<ReadErrorEntry> entries_;
    std::uint64_t dropped_ = 0;
};

/** What one device read cost beyond the transfer itself. */
struct DeviceReadResult
{
    /** Retry attempts spent on recovery. */
    std::uint32_t retries = 0;

    /** Sectors recovered after at least one retry. */
    std::uint32_t recoveredSectors = 0;

    /** Sectors unrecovered after the budget (or offline). */
    std::uint32_t failedSectors = 0;

    /** True when any sector was lost: a typed partial failure. */
    bool degraded() const { return failedSectors > 0; }
};

/** What one device write did to the zone machine. */
struct DeviceWriteResult
{
    /** Zone resets performed (explicit rewinds by the log). */
    std::uint32_t zoneResets = 0;

    /** Write-pointer violations recovered by realignment. */
    std::uint32_t wpViolations = 0;

    /** Out-of-policy writes absorbed by SWP zones. */
    std::uint32_t outOfPolicy = 0;

    /** Sectors refused outright (READ_ONLY/OFFLINE zones). */
    std::uint32_t failedSectors = 0;

    /** Write-pointer divergences injected after this write. */
    std::uint32_t divergences = 0;
};

/** Lifetime totals of one device (mirrors SimResult fields). */
struct DeviceStats
{
    std::uint64_t readRetries = 0;
    std::uint64_t recoveredSectors = 0;
    std::uint64_t failedReadSectors = 0;
    std::uint64_t degradedReads = 0;
    std::uint64_t failedWriteSectors = 0;
    std::uint64_t zoneResets = 0;
    std::uint64_t wpViolations = 0;
    std::uint64_t outOfPolicyWrites = 0;
    std::uint64_t grownDefects = 0;
    std::uint64_t wpDivergences = 0;
    std::uint64_t crashes = 0;
};

/**
 * The read/write front over a ZoneSet. Accesses may span any
 * number of zones; the device splits them at zone boundaries and
 * applies per-zone policy. Policy violations and media errors are
 * absorbed into counted, typed results — the only exceptions a
 * device op ever throws are StatusError(Cancelled/DeadlineExceeded)
 * when the cancellation token fires during recovery backoff and
 * StatusError(DataLoss) when the seeded CrashSchedule kills the
 * device (power loss is not a partial result: the run is over).
 * Not thread-safe: one device belongs to one replay.
 */
class ZonedDevice
{
  public:
    ZonedDevice(const ZoneLayout &layout,
                const ZonedDeviceOptions &options,
                CancelToken cancel = {});

    /** Pre-fill [0, end_sector): the identity region that exists
     *  before the replay starts. */
    void fillTo(std::uint64_t end_sector);

    /**
     * A media read of `extent`. Traverses the fault model sector
     * by sector; transient sectors are retried with backoff, and
     * sectors that exhaust the budget (or hit grown defects /
     * offline zones) are counted as failed rather than thrown.
     */
    DeviceReadResult read(const SectorExtent &extent);

    /**
     * A media write of `extent`. Enforces each zone's write
     * policy; rewinds to a zone start become resets (see
     * autoResetOnRewind), other violations are recovered by
     * realigning the device pointer to the host's — both counted.
     */
    DeviceWriteResult write(const SectorExtent &extent);

    const ZoneSet &zones() const { return zones_; }
    const ZonedDeviceOptions &options() const { return options_; }
    const ReadErrorLog &readErrorLog() const { return errorLog_; }
    const DeviceStats &stats() const { return stats_; }

    /** True once a scheduled power loss fired: every further
     *  access throws the POWER_LOSS status. */
    bool dead() const { return dead_; }

    /** Publish the zone-condition census as telemetry gauges
     *  (device_zones{condition=...}). */
    void publishZoneGauges() const;

  private:
    /** Per-sector fault classification (pure, seeded). */
    enum class SectorFault : std::uint8_t
    {
        Good,
        Transient,
        Grown,
    };

    SectorFault classifySector(std::uint64_t sector) const;

    /** Seeded retries a transient sector needs (>= 1). */
    std::uint32_t requiredRetries(std::uint64_t sector) const;

    /** True when this grown defect takes the zone OFFLINE. */
    bool defectGoesOffline(std::uint64_t sector) const;

    /**
     * Run one bounded-recovery episode for a sector.
     * @param required Retries after which the sector recovers;
     *        negative means it never does (grown defect).
     * @return (retries spent, recovered). Throws StatusError when
     *         cancelled mid-backoff.
     */
    std::pair<std::uint32_t, bool>
    recoverSector(std::uint64_t sector, std::int32_t required);

    /** Handle a newly discovered grown defect in zone `index`. */
    void discoverDefect(std::size_t index, std::uint64_t sector);

    DeviceReadResult readPiece(std::size_t index,
                               const SectorExtent &piece);
    DeviceWriteResult writePiece(std::size_t index,
                                 const SectorExtent &piece);

    ZonedDeviceOptions options_;
    ZoneSet zones_;
    CancelToken cancel_;

    /** Jitter stream for recovery backoff (wall-clock only). */
    Rng rng_;

    /** Grown defects already discovered: later reads fail fast. */
    std::unordered_set<std::uint64_t> knownDefects_;

    /** Throw POWER_LOSS if the scheduled crash already fired. */
    void checkAlive() const;

    /** Media write ops so far (divergence and crash scheduling). */
    std::uint64_t writeOps_ = 0;

    /** Power already lost; set by the crash schedule. */
    bool dead_ = false;

    ReadErrorLog errorLog_;
    DeviceStats stats_;

    // Telemetry handles, resolved once at construction.
    telemetry::Counter *readRetries_;
    telemetry::Counter *zoneResets_;
    telemetry::Counter *wpViolations_;
    telemetry::Counter *mediaErrorsTransient_;
    telemetry::Counter *mediaErrorsGrown_;
    telemetry::Counter *crashes_;
    telemetry::LatencyHistogram *recoveryLatency_;
};

} // namespace logseek::disk

#endif // LOGSEEK_DISK_ZONED_DEVICE_H
