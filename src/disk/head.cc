#include "head.h"

#include "util/logging.h"

namespace logseek::disk
{

SeekInfo
DiskHead::access(const SectorExtent &extent, trace::IoType type)
{
    const SeekInfo info = classify(expectedNext_, extent, type);
    expectedNext_ = extent.end();
    ++accessCount_;
    return info;
}

SeekInfo
DiskHead::classify(std::uint64_t expected_next,
                   const SectorExtent &extent, trace::IoType type)
{
    panicIf(extent.empty(), "DiskHead::classify: empty extent");
    SeekInfo info;
    info.type = type;
    if (extent.start != expected_next) {
        info.seeked = true;
        info.distanceBytes =
            sectorDistanceBytes(expected_next, extent.start);
    }
    return info;
}

void
DiskHead::fastForward(std::uint64_t expected_next,
                      std::uint64_t accesses)
{
    expectedNext_ = expected_next;
    accessCount_ += accesses;
}

void
DiskHead::reset()
{
    expectedNext_ = 0;
    accessCount_ = 0;
}

} // namespace logseek::disk
