#include "head.h"

#include "util/logging.h"

namespace logseek::disk
{

SeekInfo
DiskHead::access(const SectorExtent &extent, trace::IoType type)
{
    panicIf(extent.empty(), "DiskHead::access: empty extent");
    SeekInfo info;
    info.type = type;
    if (extent.start != expectedNext_) {
        info.seeked = true;
        info.distanceBytes =
            sectorDistanceBytes(expectedNext_, extent.start);
    }
    expectedNext_ = extent.end();
    ++accessCount_;
    return info;
}

void
DiskHead::reset()
{
    expectedNext_ = 0;
    accessCount_ = 0;
}

} // namespace logseek::disk
