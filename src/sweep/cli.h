/**
 * @file
 * Shared command-line front end for the bench harnesses.
 *
 * Every figure/ablation binary takes the same surface:
 *
 *   harness [scale] [seed] [--jobs N] [--json[=path]]
 *           [--csv[=path]] [--paranoid]
 *
 * scale/seed feed the synthetic workload profiles; --jobs sets the
 * sweep worker count (0 = hardware concurrency); --json/--csv emit
 * the uniform machine-readable report next to the human-readable
 * tables (default path "-" = stdout); --paranoid replays every run
 * under a fresh ValidatingObserver in paranoid mode.
 */

#ifndef LOGSEEK_SWEEP_CLI_H
#define LOGSEEK_SWEEP_CLI_H

#include <optional>
#include <string>

#include "sweep/sweep_runner.h"
#include "workloads/profiles.h"

namespace logseek::sweep
{

/** Parsed common bench options. */
struct BenchCli
{
    /** Workload scale/seed (positional arguments). */
    workloads::ProfileOptions profile;

    /** Sweep worker threads (--jobs; 0 = hardware concurrency). */
    int jobs = 1;

    /** Replay under a paranoid ValidatingObserver (--paranoid). */
    bool paranoid = false;

    /** Report destinations; "-" means stdout. */
    std::optional<std::string> jsonPath;
    std::optional<std::string> csvPath;

    /** Worker count with 0 resolved to hardware concurrency. */
    int resolvedJobs() const;

    /**
     * Observer factory combining --paranoid with a bench-specific
     * factory (may be null): paranoid validators come first, the
     * extra factory's observers after.
     */
    ObserverFactory
    observerFactory(ObserverFactory extra = nullptr) const;

    /** Write the sweep to the requested --json/--csv outputs. */
    void emitReports(const SweepResult &sweep) const;
};

/**
 * Parse the shared bench surface. Unknown options print usage to
 * stderr and return nullopt (callers exit 2); positional arguments
 * beyond scale and seed are rejected the same way.
 *
 * @param argc,argv main()'s arguments.
 * @param usage One-line usage string, e.g. "fig11_saf [scale]
 *        [seed] [--jobs N] [--json[=path]] [--csv[=path]]
 *        [--paranoid]".
 * @param default_scale Profile scale when no positional scale is
 *        given (benches historically default to 0.02 or 0.01).
 */
std::optional<BenchCli> parseBenchCli(int argc, char **argv,
                                      const std::string &usage,
                                      double default_scale = 0.02);

} // namespace logseek::sweep

#endif // LOGSEEK_SWEEP_CLI_H
