/**
 * @file
 * Shared command-line front end for the bench harnesses.
 *
 * Every figure/ablation binary takes the same surface:
 *
 *   harness [scale] [seed] [--jobs N|auto] [--json[=path]]
 *           [--csv[=path]] [--paranoid] [--deadline-ms N]
 *           [--retries N] [--checkpoint path] [--resume path]
 *           [--metrics-out file] [--trace-out file]
 *           [--fault-rate R] [--bad-sector-seed N]
 *           [--max-open-zones N] [--error-log-cap N]
 *           [--replay-shards N] [--replay-batch N] [--help]
 *
 * scale/seed feed the synthetic workload profiles; --jobs sets the
 * sweep worker count ("auto" = hardware concurrency; 0 and negative
 * values are rejected); --json/--csv emit the uniform machine-
 * readable report next to the human-readable tables (default path
 * "-" = stdout); --paranoid replays every run under a fresh
 * ValidatingObserver in paranoid mode. The fault-tolerance flags
 * map onto SweepOptions: --deadline-ms bounds each cell's replay,
 * --retries N allows N retries of retryable failures, --checkpoint
 * appends completed cells to a CRC-guarded file and --resume
 * restores them. The observability flags arm the telemetry
 * subsystem (off, and costing nothing, by default): --metrics-out
 * writes a metrics snapshot after the sweep (.prom/.txt selects
 * Prometheus text, anything else JSON) and --trace-out writes a
 * Chrome trace_event JSON file of the sweep's spans.
 * --replay-shards runs each replay's seek classification in N
 * parallel shards on a dedicated pool (byte-identical to serial;
 * docs/parallel_replay.md) and --replay-batch overrides the
 * engine's columnar batch size. All numeric arguments are
 * validated strictly — a malformed value is a typed
 * InvalidArgument error, never a silent default.
 */

#ifndef LOGSEEK_SWEEP_CLI_H
#define LOGSEEK_SWEEP_CLI_H

#include <optional>
#include <string>
#include <vector>

#include "sweep/sweep_runner.h"
#include "trace/format.h"
#include "util/status.h"
#include "workloads/profiles.h"

namespace logseek::sweep
{

/** Parsed common bench options. */
struct BenchCli
{
    /** Workload scale/seed (positional arguments). */
    workloads::ProfileOptions profile;

    /** Sweep worker threads (--jobs; 0 = hardware concurrency,
     *  only reachable via "--jobs auto"). */
    int jobs = 1;

    /** Replay under a paranoid ValidatingObserver (--paranoid). */
    bool paranoid = false;

    /** Report destinations; "-" means stdout. */
    std::optional<std::string> jsonPath;
    std::optional<std::string> csvPath;

    /** Per-cell replay deadline in ms (--deadline-ms; 0 = off). */
    long long deadlineMs = 0;

    /** Retries allowed per retryable failure (--retries; the cell
     *  gets retries + 1 attempts in total). */
    int retries = 0;

    /** Checkpoint file appended as cells complete (--checkpoint);
     *  empty = off. */
    std::string checkpointPath;

    /** Checkpoint to resume from (--resume); empty = off. */
    std::string resumePath;

    /** Metrics snapshot destination (--metrics-out); empty = off,
     *  "-" = stdout, .prom/.txt = Prometheus text, else JSON. */
    std::string metricsOutPath;

    /** Chrome trace_event destination (--trace-out); empty = off,
     *  "-" = stdout. */
    std::string traceOutPath;

    /** Device fault rate (--fault-rate, in [0, 1]); feeds the
     *  zoned-device fault model of benches that model media
     *  errors. */
    double faultRate = 0.0;

    /** Seed of the device's bad-sector map (--bad-sector-seed). */
    std::uint64_t badSectorSeed = 0xbad5ec70ULL;

    /** Zoned-device open-zone limit (--max-open-zones, in
     *  [1, 65536]). */
    std::uint32_t maxOpenZones = 8;

    /** Read-error-log bound (--error-log-cap, in [1, 1048576]);
     *  0 = keep the device default
     *  (disk::ReadErrorLog::kMaxEntries). Entries past the cap are
     *  dropped and counted, never silently lost. */
    std::size_t errorLogCap = 0;

    /** Finite-log capacity override in bytes (--log-capacity, in
     *  [1 MiB, 1 TiB]); 0 = keep the bench default. Lets GC
     *  experiments change utilization without recompiling. */
    std::uint64_t logCapacityBytes = 0;

    /** Finite-log segment size override in bytes
     *  (--segment-bytes, in [64 KiB, 1 GiB]); 0 = bench
     *  default. */
    std::uint64_t segmentBytes = 0;

    /** Finite-log cleaning reserve override in segments
     *  (--clean-reserve, in [1, 1024]); 0 = bench default. The
     *  clean target follows at reserve + 2 unless the bench sets
     *  its own. */
    std::uint32_t cleanReserve = 0;

    /** Intra-replay shard count (--replay-shards, in [1, 256]);
     *  1 = serial replay, > 1 shards every cell's seek
     *  classification over a dedicated pool. */
    int replayShards = 1;

    /** Replay batch size override in records (--replay-batch, in
     *  [1, 65536]); 0 = the engine default. */
    int replayBatch = 0;

    /** Declared format of trace files a bench reads or converts
     *  (--trace-format {auto, csv, lskt, lskc}); Auto (the
     *  default) resolves by magic sniff / extension. Parsed
     *  strictly — any other spelling is InvalidArgument. */
    trace::TraceFormat traceFormat = trace::TraceFormat::Auto;

    /** Destination of a trace conversion (--convert-out); empty =
     *  no conversion requested. sweepOptions() turns this into an
     *  onTrace hook exporting the first workload's trace; the
     *  output format follows the path's extension unless
     *  --trace-format overrides it. Named --convert-out because
     *  --trace-out is already the Chrome trace_event
     *  destination. */
    std::string convertOutPath;

    /** --help / -h was given; the caller prints help and exits. */
    bool helpRequested = false;

    /** Worker count with 0 resolved to hardware concurrency. */
    int resolvedJobs() const;

    /**
     * Observer factory combining --paranoid with a bench-specific
     * factory (may be null): paranoid validators come first, the
     * extra factory's observers after.
     */
    ObserverFactory
    observerFactory(ObserverFactory extra = nullptr) const;

    /**
     * SweepOptions reflecting every parsed flag: jobs, observers,
     * deadline, retry policy and checkpoint/resume paths. With
     * --convert-out it pre-installs an onTrace hook that exports
     * the first workload's trace in the --trace-format (or
     * extension-implied) format, so benches that install their
     * own onTrace hook must chain the existing one:
     *
     *   auto chained = std::move(options.onTrace);
     *   options.onTrace = [chained, ...](std::size_t w,
     *                                    const trace::Trace &t) {
     *       if (chained) chained(w, t);
     *       ...
     *   };
     *
     * Also
     * arms the telemetry subsystem (enables collection, installs
     * the process-wide trace writer) when --metrics-out or
     * --trace-out was given; telemetry stays disabled otherwise.
     */
    SweepOptions sweepOptions(ObserverFactory extra = nullptr) const;

    /**
     * Write the sweep to the requested --json/--csv outputs, then
     * the telemetry snapshot/trace to --metrics-out/--trace-out.
     */
    void emitReports(const SweepResult &sweep) const;

    /**
     * Apply the --log-capacity / --segment-bytes /
     * --clean-reserve overrides onto a bench's finite-log
     * configuration; flags left at 0 keep the bench's values.
     * When --clean-reserve is set the clean target is raised to
     * reserve + 2 if it would not otherwise exceed the reserve.
     */
    void applyFiniteLogOverrides(stl::FiniteLogConfig &config)
        const;
};

/** The standard one-line usage string for a bench binary. */
std::string benchUsage(const std::string &name);

/** The full --help text for a bench binary (multi-line). */
std::string benchHelp(const std::string &name);

/**
 * Every flag the shared bench surface accepts, in help order. The
 * CLI test asserts benchHelp() documents exactly this set, so the
 * help text cannot drift from the parser.
 */
std::vector<std::string> benchFlagNames();

/**
 * Typed-error parse of the shared bench surface: InvalidArgument
 * (with a message naming the offending flag and value) on an
 * unknown option, an excess positional, or a malformed number —
 * including --jobs 0, negative counts and non-numeric text.
 */
StatusOr<BenchCli> tryParseBenchCli(int argc, char **argv,
                                    double default_scale = 0.02);

/**
 * Convenience wrapper around tryParseBenchCli: on error, prints the
 * message and the usage line to stderr and returns nullopt (callers
 * exit 2). On --help, prints benchHelp() to stdout and exits 0.
 *
 * @param argc,argv main()'s arguments.
 * @param usage One-line usage string; benchUsage(name) builds the
 *        standard one.
 * @param default_scale Profile scale when no positional scale is
 *        given (benches historically default to 0.02 or 0.01).
 */
std::optional<BenchCli> parseBenchCli(int argc, char **argv,
                                      const std::string &usage,
                                      double default_scale = 0.02);

} // namespace logseek::sweep

#endif // LOGSEEK_SWEEP_CLI_H
