/**
 * @file
 * Uniform machine-readable sweep reports.
 *
 * Every bench harness emits the same JSON and CSV shapes, so one
 * plotting/diffing toolchain covers all figures: a `sweep` object
 * with telemetry (jobs, wall-clock, ops/sec) and one row per
 * (workload, config) cell carrying every SimResult field plus
 * per-run wall-clock. Simulation fields are deterministic —
 * byte-identical across job counts — while telemetry fields
 * (wallSec, opsPerSec, steals) vary run to run.
 */

#ifndef LOGSEEK_SWEEP_REPORT_H
#define LOGSEEK_SWEEP_REPORT_H

#include <iosfwd>
#include <string>

#include "sweep/sweep_runner.h"

namespace logseek::sweep
{

/** Escape a string for embedding in a JSON document. */
std::string jsonEscape(const std::string &text);

/**
 * Write the sweep as a JSON document. With telemetry disabled,
 * only deterministic fields are emitted (the form the determinism
 * tests compare across job counts).
 */
void writeJson(std::ostream &out, const SweepResult &sweep,
               bool with_telemetry = true);

/** Write the sweep as CSV, one header row plus one row per cell. */
void writeCsv(std::ostream &out, const SweepResult &sweep,
              bool with_telemetry = true);

/**
 * Render a report to the named file ("-" means stdout). Returns
 * false (with a message on stderr) when the file cannot be opened.
 */
bool writeJsonFile(const std::string &path, const SweepResult &sweep);
bool writeCsvFile(const std::string &path, const SweepResult &sweep);

} // namespace logseek::sweep

#endif // LOGSEEK_SWEEP_REPORT_H
