#include "sweep_runner.h"

#include <chrono>
#include <memory>
#include <utility>

#include "sweep/task_pool.h"
#include "util/logging.h"

namespace logseek::sweep
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

WorkloadSpec
WorkloadSpec::profile(const std::string &name,
                      const workloads::ProfileOptions &options)
{
    return {name, [name, options] {
                return workloads::makeWorkload(name, options);
            }};
}

WorkloadSpec
WorkloadSpec::derived(
    const std::string &label, const std::string &profile_name,
    const workloads::ProfileOptions &options,
    std::function<trace::Trace(const trace::Trace &)> transform)
{
    return {label,
            [profile_name, options,
             transform = std::move(transform)] {
                trace::Trace out = transform(
                    workloads::makeWorkload(profile_name, options));
                return out;
            }};
}

ConfigSpec
ConfigSpec::fixed(std::string label, stl::SimConfig config)
{
    return {std::move(label),
            [config = std::move(config)](const trace::Trace &) {
                return config;
            }};
}

ConfigSpec
ConfigSpec::deferred(
    std::string label,
    std::function<stl::SimConfig(const trace::Trace &)> make)
{
    return {std::move(label), std::move(make)};
}

const RunRow &
SweepResult::row(std::size_t w, std::size_t c) const
{
    panicIf(w >= workloads.size() || c >= configs.size(),
            "SweepResult::row: cell out of range");
    return rows[w * configs.size() + c];
}

std::optional<double>
SweepResult::safVs(std::size_t w, std::size_t c,
                   std::size_t baseline_c) const
{
    const RunRow &baseline = row(w, baseline_c);
    const RunRow &cell = row(w, c);
    if (!baseline.status.ok() || !cell.status.ok())
        return std::nullopt;
    return stl::seekAmplification(baseline.result, cell.result);
}

SweepRunner::SweepRunner(std::vector<WorkloadSpec> workloads,
                         std::vector<ConfigSpec> configs,
                         SweepOptions options)
    : workloads_(std::move(workloads)),
      configs_(std::move(configs)), options_(std::move(options))
{
}

SweepResult
SweepRunner::run()
{
    const std::size_t workload_count = workloads_.size();
    const std::size_t config_count = configs_.size();

    SweepResult out;
    out.workloads.reserve(workload_count);
    for (const auto &workload : workloads_)
        out.workloads.push_back(workload.name);
    out.configs.reserve(config_count);
    for (const auto &config : configs_)
        out.configs.push_back(config.label);

    // Rows are pre-sized so every task writes only its own slot;
    // the final order is the grid order regardless of which worker
    // finishes when.
    out.rows.resize(workload_count * config_count);
    for (std::size_t w = 0; w < workload_count; ++w)
        for (std::size_t c = 0; c < config_count; ++c)
            out.rows[w * config_count + c].key = {
                w, c, workloads_[w].name, configs_[c].label};

    const auto start = std::chrono::steady_clock::now();
    const int jobs = options_.jobs < 1 ? 1 : options_.jobs;
    {
        TaskPool pool(static_cast<unsigned>(jobs));

        auto run_cell = [this, &out, config_count](
                            std::size_t w, std::size_t c,
                            std::shared_ptr<const trace::Trace>
                                trace) {
            RunRow &row = out.rows[w * config_count + c];
            row.ops = trace->size();
            try {
                stl::SimConfig config = configs_[c].make(*trace);
                stl::Simulator simulator(config);
                if (options_.observerFactory)
                    row.observers =
                        options_.observerFactory(row.key);
                for (const auto &observer : row.observers)
                    simulator.addObserver(observer.get());

                const auto run_start =
                    std::chrono::steady_clock::now();
                StatusOr<stl::SimResult> result =
                    simulator.tryRun(*trace);
                row.wallSec = secondsSince(run_start);
                if (result.ok())
                    row.result = std::move(result).value();
                else
                    row.status = result.status();
            } catch (const PanicError &e) {
                row.status = internalError(e.what());
            } catch (const FatalError &e) {
                row.status = invalidArgumentError(e.what());
            }
        };

        for (std::size_t w = 0; w < workload_count; ++w) {
            pool.submit([this, &out, &pool, run_cell, w,
                         config_count] {
                std::shared_ptr<const trace::Trace> trace;
                try {
                    trace = std::make_shared<const trace::Trace>(
                        workloads_[w].load());
                    if (options_.onTrace)
                        options_.onTrace(w, *trace);
                } catch (const PanicError &e) {
                    const Status status = internalError(e.what());
                    for (std::size_t c = 0; c < config_count; ++c)
                        out.rows[w * config_count + c].status =
                            status;
                    return;
                } catch (const FatalError &e) {
                    const Status status =
                        invalidArgumentError(e.what());
                    for (std::size_t c = 0; c < config_count; ++c)
                        out.rows[w * config_count + c].status =
                            status;
                    return;
                }
                // Fan the loaded trace out into one task per
                // config; idle workers steal them.
                for (std::size_t c = 0; c < config_count; ++c)
                    pool.submit([run_cell, w, c, trace] {
                        run_cell(w, c, trace);
                    });
            });
        }

        pool.wait();
        out.telemetry.steals = pool.stealCount();
    }

    out.telemetry.wallSec = secondsSince(start);
    out.telemetry.jobs = jobs;
    out.telemetry.runs = out.rows.size();
    for (const RunRow &row : out.rows) {
        out.telemetry.replaySec += row.wallSec;
        out.telemetry.ops += row.ops;
        if (!row.status.ok())
            ++out.telemetry.failedRuns;
    }
    return out;
}

} // namespace logseek::sweep
