#include "sweep_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "sweep/checkpoint.h"
#include "sweep/task_pool.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_writer.h"
#include "util/checkpoint.h"
#include "util/logging.h"

namespace logseek::sweep
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Per-cell jitter seed: splitmix64-style mix of the sweep seed and
 * the cell coordinates, so every cell gets an independent but
 * reproducible backoff stream.
 */
std::uint64_t
cellSeed(std::uint64_t seed, std::uint64_t w, std::uint64_t c)
{
    std::uint64_t x = seed ^
                      (0x9e3779b97f4a7c15ULL * (w + 1)) ^
                      (0xbf58476d1ce4e5b9ULL * (c + 2));
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

const char *
toString(CellOutcome outcome)
{
    switch (outcome) {
      case CellOutcome::Ok: return "OK";
      case CellOutcome::RetriedOk: return "RETRIED_OK";
      case CellOutcome::Failed: return "FAILED";
      case CellOutcome::TimedOut: return "TIMED_OUT";
      case CellOutcome::Skipped: return "SKIPPED";
    }
    return "UNKNOWN";
}

CellOutcome
classifyOutcome(const Status &status, int attempts)
{
    if (status.ok())
        return attempts > 1 ? CellOutcome::RetriedOk
                            : CellOutcome::Ok;
    switch (status.code()) {
      case StatusCode::DeadlineExceeded:
        return CellOutcome::TimedOut;
      case StatusCode::Cancelled: return CellOutcome::Skipped;
      default: return CellOutcome::Failed;
    }
}

WorkloadSpec
WorkloadSpec::profile(const std::string &name,
                      const workloads::ProfileOptions &options)
{
    return {name,
            [name, options] {
                return workloads::makeWorkload(name, options);
            },
            nullptr};
}

WorkloadSpec
WorkloadSpec::derived(
    const std::string &label, const std::string &profile_name,
    const workloads::ProfileOptions &options,
    std::function<trace::Trace(const trace::Trace &)> transform)
{
    return {label,
            [profile_name, options,
             transform = std::move(transform)] {
                trace::Trace out = transform(
                    workloads::makeWorkload(profile_name, options));
                return out;
            },
            nullptr};
}

WorkloadSpec
WorkloadSpec::source(
    std::string name,
    std::function<std::shared_ptr<const trace::TraceSource>()>
        load_source)
{
    return {std::move(name), nullptr, std::move(load_source)};
}

ConfigSpec
ConfigSpec::fixed(std::string label, stl::SimConfig config)
{
    return {std::move(label),
            [config](const trace::Trace &) { return config; },
            [config = std::move(config)](
                const trace::TraceSource &) { return config; }};
}

ConfigSpec
ConfigSpec::deferred(
    std::string label,
    std::function<stl::SimConfig(const trace::Trace &)> make)
{
    return {std::move(label), std::move(make), nullptr};
}

ConfigSpec
ConfigSpec::deferredSource(
    std::string label,
    std::function<stl::SimConfig(const trace::TraceSource &)> make)
{
    return {std::move(label), nullptr, std::move(make)};
}

const RunRow &
SweepResult::row(std::size_t w, std::size_t c) const
{
    panicIf(w >= workloads.size() || c >= configs.size(),
            "SweepResult::row: cell out of range");
    return rows[w * configs.size() + c];
}

std::optional<double>
SweepResult::safVs(std::size_t w, std::size_t c,
                   std::size_t baseline_c) const
{
    const RunRow &baseline = row(w, baseline_c);
    const RunRow &cell = row(w, c);
    if (!baseline.status.ok() || !cell.status.ok())
        return std::nullopt;
    return stl::seekAmplification(baseline.result, cell.result);
}

SweepRunner::SweepRunner(std::vector<WorkloadSpec> workloads,
                         std::vector<ConfigSpec> configs,
                         SweepOptions options)
    : workloads_(std::move(workloads)),
      configs_(std::move(configs)), options_(std::move(options))
{
}

SweepResult
SweepRunner::run()
{
    const std::size_t workload_count = workloads_.size();
    const std::size_t config_count = configs_.size();

    SweepResult out;
    out.workloads.reserve(workload_count);
    for (const auto &workload : workloads_)
        out.workloads.push_back(workload.name);
    out.configs.reserve(config_count);
    for (const auto &config : configs_)
        out.configs.push_back(config.label);

    // Rows are pre-sized so every task writes only its own slot;
    // the final order is the grid order regardless of which worker
    // finishes when.
    out.rows.resize(workload_count * config_count);
    for (std::size_t w = 0; w < workload_count; ++w)
        for (std::size_t c = 0; c < config_count; ++c)
            out.rows[w * config_count + c].key = {
                w, c, workloads_[w].name, configs_[c].label};

    restoreFromCheckpoint(out);

    // Checkpoint writer, seeded with the restored cells so a
    // resumed-and-continued sweep republishes them (physically
    // dropping any damaged frames the load skipped).
    std::unique_ptr<CheckpointWriter> writer;
    if (!options_.checkpointPath.empty()) {
        writer = std::make_unique<CheckpointWriter>(
            options_.checkpointPath);
        std::vector<std::string> seeds;
        for (const RunRow &row : out.rows)
            if (row.restored)
                seeds.push_back(encodeCellRecord(recordOf(row)));
        writer->seed(std::move(seeds));
    }
    std::atomic<bool> checkpoint_warned{false};

    // Telemetry handles shared by the cell/load lambdas below.
    auto &registry = telemetry::Registry::global();
    telemetry::Counter &checkpoint_failures = registry.counter(
        "sweep_checkpoint_append_failures_total");

    const auto start = std::chrono::steady_clock::now();
    const int jobs = options_.jobs < 1 ? 1 : options_.jobs;
    const int max_attempts = std::max(1, options_.retry.maxAttempts);
    {
        // Dedicated pool for intra-replay shard chunks. A cell
        // worker fans its batch's seek classification out here and
        // runs chunk 0 itself; giving shards their own pool means a
        // replay never waits on the cell pool's queue, which could
        // deadlock once every cell worker blocked simultaneously.
        // Declared before the cell pool so it is destroyed after it.
        std::unique_ptr<TaskPool> shard_pool;
        stl::ShardExecutor shard_executor;
        if (options_.replayShards > 1) {
            const unsigned hw = std::max(
                1u, std::thread::hardware_concurrency());
            shard_pool = std::make_unique<TaskPool>(
                std::min<unsigned>(static_cast<unsigned>(
                                       options_.replayShards - 1),
                                   hw));
            shard_executor = makeShardExecutor(*shard_pool);
        }

        TaskPool pool(static_cast<unsigned>(jobs));

        auto finish_cell = [this, &writer, &checkpoint_warned,
                            &checkpoint_failures](RunRow &row) {
            if (writer && row.status.ok()) {
                const Status published =
                    writer->append(encodeCellRecord(recordOf(row)));
                if (!published.ok()) {
                    // The warning is printed once; the counter
                    // keeps counting so the snapshot shows how
                    // many appends the warn-once cap suppressed.
                    checkpoint_failures.add();
                    if (!checkpoint_warned.exchange(true))
                        warn("sweep checkpoint: " +
                             published.message());
                }
            }
            if (options_.onCellComplete)
                options_.onCellComplete(row);
        };

        auto run_cell = [this, &out, &pool, &shard_executor,
                         finish_cell, config_count, max_attempts](
                            std::size_t w, std::size_t c,
                            std::shared_ptr<const trace::TraceSource>
                                source,
                            int load_extra_attempts) {
            RunRow &row = out.rows[w * config_count + c];
            row.ops = source->sizeHint().value_or(0);
            Rng rng(cellSeed(options_.retrySeed, w, c));
            int attempt = 0;
            Status status;
            for (;;) {
                if (options_.cancel.cancelled()) {
                    status = options_.cancel.toStatus(
                        "cell " + row.key.workload + "/" +
                        row.key.configLabel);
                    break;
                }
                ++attempt;
                // One trace span per attempt, tagged with the cell
                // coordinates; retries show up as separate spans.
                // Reset before any backoff sleep so the span
                // measures the attempt alone.
                std::optional<telemetry::ScopedSpan> span;
                span.emplace("cell:" + row.key.workload + "/" +
                                 row.key.configLabel,
                             "sweep-cell");
                span->arg("workload", row.key.workload);
                span->arg("config", row.key.configLabel);
                span->arg("attempt", std::to_string(attempt));
                try {
                    stl::SimConfig config;
                    if (configs_[c].makeSource) {
                        config = configs_[c].makeSource(*source);
                    } else {
                        const trace::Trace *memory =
                            source->memoryTrace();
                        if (memory == nullptr) {
                            // A trace-shaped factory cannot see a
                            // streamed workload; this is a spec
                            // bug, not a transient fault.
                            status = invalidArgumentError(
                                "config '" + row.key.configLabel +
                                "' sizes itself from the whole "
                                "trace, but workload '" +
                                row.key.workload +
                                "' is not RAM-backed; use "
                                "ConfigSpec::deferredSource");
                            break;
                        }
                        config = configs_[c].make(*memory);
                    }
                    if (options_.replayShards > 0)
                        config.replayShards =
                            options_.replayShards;
                    if (options_.replayBatchSize > 0)
                        config.replayBatchSize =
                            options_.replayBatchSize;
                    if (config.replayShards > 1 &&
                        !config.shardExecutor && shard_executor)
                        config.shardExecutor = shard_executor;
                    stl::Simulator simulator(config);
                    // Fresh observers every attempt: a replay that
                    // died mid-trace left them half-updated.
                    row.observers.clear();
                    if (options_.observerFactory)
                        row.observers =
                            options_.observerFactory(row.key);
                    for (const auto &observer : row.observers)
                        simulator.addObserver(observer.get());

                    // Per-cell deadline: a watchdog fires this
                    // cell's CancelSource (linked under the sweep-
                    // wide token), and the replay unwinds at its
                    // next per-batch check.
                    CancelSource cell_cancel(options_.cancel);
                    std::optional<TaskPool::WatchId> watch;
                    if (options_.cellDeadline.count() > 0)
                        watch = pool.armWatchdog(
                            std::chrono::steady_clock::now() +
                                options_.cellDeadline,
                            [cell_cancel]() mutable {
                                cell_cancel.cancel(
                                    CancelReason::
                                        DeadlineExceeded);
                            });

                    // A fresh cursor per attempt: a replay that
                    // died mid-stream left the old one mid-pull.
                    std::unique_ptr<trace::TraceInput> input =
                        source->open();
                    const auto run_start =
                        std::chrono::steady_clock::now();
                    StatusOr<stl::SimResult> result =
                        simulator.tryRun(*input,
                                         cell_cancel.token());
                    row.wallSec = secondsSince(run_start);
                    if (watch)
                        pool.disarmWatchdog(*watch);
                    if (result.ok()) {
                        row.result = std::move(result).value();
                        if (!source->sizeHint())
                            row.ops = row.result.reads +
                                      row.result.writes;
                        status = Status();
                        break;
                    }
                    status = result.status();
                } catch (const StatusError &e) {
                    status = e.status();
                } catch (const PanicError &e) {
                    status = internalError(e.what());
                } catch (const FatalError &e) {
                    status = invalidArgumentError(e.what());
                }
                span.reset();
                if (isRetryable(status.code()) &&
                    attempt < max_attempts) {
                    // A cancellation during the backoff is caught
                    // by the check at the top of the loop.
                    sleepFor(backoffDelay(options_.retry, attempt,
                                          rng),
                             options_.cancel);
                    continue;
                }
                break;
            }
            row.status = status;
            row.attempts =
                std::max(1, load_extra_attempts + attempt);
            row.outcome = classifyOutcome(status, row.attempts);
            finish_cell(row);
        };

        for (std::size_t w = 0; w < workload_count; ++w) {
            // A workload whose cells were all restored needs no
            // trace at all — unless an onTrace analysis hook still
            // wants to see it.
            bool needs_load = config_count == 0;
            for (std::size_t c = 0; c < config_count; ++c)
                if (!out.rows[w * config_count + c].restored)
                    needs_load = true;
            if (options_.onTrace)
                needs_load = true;
            if (!needs_load)
                continue;

            pool.submit([this, &out, &pool, run_cell, finish_cell,
                         w, config_count, max_attempts] {
                std::shared_ptr<const trace::TraceSource> source;
                Rng rng(cellSeed(options_.retrySeed ^
                                     0x10adf00dULL,
                                 w, config_count));
                int attempt = 0;
                Status status;
                for (;;) {
                    if (options_.cancel.cancelled()) {
                        status = options_.cancel.toStatus(
                            "workload '" + workloads_[w].name +
                            "'");
                        break;
                    }
                    ++attempt;
                    telemetry::ScopedSpan span(
                        "load:" + workloads_[w].name,
                        "sweep-load");
                    span.arg("workload", workloads_[w].name);
                    span.arg("attempt", std::to_string(attempt));
                    try {
                        if (workloads_[w].loadSource)
                            source = workloads_[w].loadSource();
                        else
                            source = std::make_shared<
                                const trace::InMemoryTraceSource>(
                                workloads_[w].load());
                        if (source == nullptr)
                            throw FatalError(
                                "workload '" +
                                workloads_[w].name +
                                "': loadSource returned null");
                        if (options_.onTrace) {
                            const trace::Trace *memory =
                                source->memoryTrace();
                            if (memory != nullptr)
                                options_.onTrace(w, *memory);
                        }
                        status = Status();
                        break;
                    } catch (const StatusError &e) {
                        status = e.status();
                    } catch (const PanicError &e) {
                        status = internalError(e.what());
                    } catch (const FatalError &e) {
                        status = invalidArgumentError(e.what());
                    }
                    if (isRetryable(status.code()) &&
                        attempt < max_attempts) {
                        sleepFor(backoffDelay(options_.retry,
                                              attempt, rng),
                                 options_.cancel);
                        continue;
                    }
                    break;
                }
                if (!status.ok()) {
                    // The whole workload is unusable; finish its
                    // non-restored cells with the load failure.
                    for (std::size_t c = 0; c < config_count;
                         ++c) {
                        RunRow &row =
                            out.rows[w * config_count + c];
                        if (row.restored)
                            continue;
                        row.status = status;
                        row.attempts = std::max(1, attempt);
                        row.outcome = classifyOutcome(
                            status, row.attempts);
                        finish_cell(row);
                    }
                    return;
                }
                // Fan the loaded source out into one task per
                // config; idle workers steal them. Each task holds
                // one shared_ptr reference, so the source — the
                // trace memory or the file mapping — is released
                // the moment the workload's last cell completes,
                // not at sweep end. Retries spent loading count
                // toward each cell's attempts.
                const int load_extra = attempt - 1;
                for (std::size_t c = 0; c < config_count; ++c) {
                    if (out.rows[w * config_count + c].restored)
                        continue;
                    pool.submit([run_cell, w, c, source,
                                 load_extra] {
                        run_cell(w, c, source, load_extra);
                    });
                }
            });
        }

        pool.wait();
        out.telemetry.steals = pool.stealCount();
    }

    out.telemetry.wallSec = secondsSince(start);
    out.telemetry.jobs = jobs;
    out.telemetry.runs = out.rows.size();
    telemetry::LatencyHistogram &cell_latency =
        registry.histogram("sweep_cell_replay_latency_ns");
    for (const RunRow &row : out.rows) {
        registry
            .counter("sweep_cells_total",
                     std::string("outcome=\"") +
                         toString(row.outcome) + "\"")
            .add();
        if (!row.restored && row.wallSec > 0.0)
            cell_latency.record(
                static_cast<std::uint64_t>(row.wallSec * 1e9));
        out.telemetry.replaySec += row.wallSec;
        out.telemetry.ops += row.ops;
        if (!row.status.ok())
            ++out.telemetry.failedRuns;
        if (row.restored)
            ++out.telemetry.restoredRuns;
        switch (row.outcome) {
          case CellOutcome::RetriedOk:
            ++out.telemetry.retriedRuns;
            break;
          case CellOutcome::TimedOut:
            ++out.telemetry.timedOutRuns;
            break;
          case CellOutcome::Skipped:
            ++out.telemetry.skippedRuns;
            break;
          default: break;
        }
    }
    return out;
}

CellRecord
SweepRunner::recordOf(const RunRow &row)
{
    return CellRecord{row.key.workload,
                      row.key.configLabel,
                      row.outcome,
                      static_cast<std::uint32_t>(row.attempts),
                      row.ops,
                      row.wallSec,
                      row.result};
}

void
SweepRunner::restoreFromCheckpoint(SweepResult &out)
{
    if (options_.resumePath.empty())
        return;

    StatusOr<CheckpointLoad> load =
        loadCheckpoint(options_.resumePath);
    if (!load.ok()) {
        warn("sweep resume: " + load.status().message() +
             "; running the full sweep");
        return;
    }
    const CheckpointLoad &checkpoint = load.value();
    auto &registry = telemetry::Registry::global();
    registry.counter("sweep_resume_damaged_frames_total")
        .add(checkpoint.damagedFrames);
    if (!checkpoint.clean())
        warn("sweep resume: checkpoint '" + options_.resumePath +
             "' is damaged (" +
             std::to_string(checkpoint.damagedFrames) +
             " bad frame(s)" +
             (checkpoint.tornTail ? ", torn tail" : "") + ", " +
             std::to_string(checkpoint.bytesDropped) +
             " byte(s) dropped); affected cells will be "
             "recomputed");

    using Key = std::pair<std::string, std::string>;
    std::map<Key, CellRecord> records;
    std::set<Key> duplicates;
    std::uint64_t undecodable = 0;
    for (const std::string &payload : checkpoint.records) {
        StatusOr<CellRecord> decoded = decodeCellRecord(payload);
        if (!decoded.ok()) {
            ++undecodable;
            continue;
        }
        CellRecord record = std::move(decoded).value();
        // Only successful outcomes carry a result worth
        // restoring.
        if (record.outcome != CellOutcome::Ok &&
            record.outcome != CellOutcome::RetriedOk)
            continue;
        Key key{record.workload, record.configLabel};
        if (records.count(key) > 0)
            duplicates.insert(key);
        else
            records.emplace(std::move(key), std::move(record));
    }
    registry.counter("sweep_resume_undecodable_records_total")
        .add(undecodable);
    registry.counter("sweep_resume_duplicate_cells_total")
        .add(duplicates.size());
    if (undecodable > 0)
        warn("sweep resume: " + std::to_string(undecodable) +
             " undecodable cell record(s) ignored");
    if (!duplicates.empty()) {
        // A duplicate means the file is not trustworthy for that
        // cell — which copy is right? Recompute it.
        warn("sweep resume: " +
             std::to_string(duplicates.size()) +
             " duplicated cell(s) in checkpoint; those cells "
             "will be recomputed");
        for (const Key &key : duplicates)
            records.erase(key);
    }

    for (RunRow &row : out.rows) {
        const auto it = records.find(
            {row.key.workload, row.key.configLabel});
        if (it == records.end())
            continue;
        const CellRecord &record = it->second;
        row.restored = true;
        row.outcome = record.outcome;
        row.attempts = static_cast<int>(record.attempts);
        row.ops = record.ops;
        row.wallSec = record.wallSec;
        row.result = record.result;
    }
}

} // namespace logseek::sweep
