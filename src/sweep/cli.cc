#include "cli.h"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>

#include "analysis/validating_observer.h"
#include "sweep/report.h"
#include "trace/convert.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_writer.h"

namespace logseek::sweep
{

namespace
{

/** Strict base-10 integer: the whole string must be the number. */
StatusOr<long long>
parseIntArg(const std::string &flag, const std::string &text)
{
    if (text.empty())
        return invalidArgumentError(flag + " requires a number");
    errno = 0;
    char *end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        return invalidArgumentError(flag + ": not a number: '" +
                                    text + "'");
    if (errno == ERANGE)
        return invalidArgumentError(flag + ": out of range: '" +
                                    text + "'");
    return value;
}

/** Strict finite double: the whole string must be the number. */
StatusOr<double>
parseDoubleArg(const std::string &flag, const std::string &text)
{
    if (text.empty())
        return invalidArgumentError(flag + " requires a number");
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        return invalidArgumentError(flag + ": not a number: '" +
                                    text + "'");
    if (errno == ERANGE || !std::isfinite(value))
        return invalidArgumentError(flag + ": out of range: '" +
                                    text + "'");
    return value;
}

/**
 * The trace writer owned by the shared CLI: function-local so it
 * exists only once a bench actually asks for --trace-out, and
 * static so it outlives the sweep whose spans it collects.
 */
telemetry::TraceEventWriter &
benchTraceWriter()
{
    static telemetry::TraceEventWriter writer;
    return writer;
}

} // namespace

int
BenchCli::resolvedJobs() const
{
    if (jobs > 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ObserverFactory
BenchCli::observerFactory(ObserverFactory extra) const
{
    if (!paranoid && !extra)
        return nullptr;
    const bool add_validator = paranoid;
    return [add_validator, extra = std::move(extra)](
               const RunKey &key) {
        std::vector<std::unique_ptr<stl::SimObserver>> observers;
        if (add_validator)
            observers.push_back(
                std::make_unique<analysis::ValidatingObserver>(
                    analysis::ValidatingObserver::Options{
                        .paranoid = true, .maxRecorded = 16}));
        if (extra) {
            auto more = extra(key);
            for (auto &observer : more)
                observers.push_back(std::move(observer));
        }
        return observers;
    };
}

SweepOptions
BenchCli::sweepOptions(ObserverFactory extra) const
{
    SweepOptions options;
    options.jobs = resolvedJobs();
    options.observerFactory = observerFactory(std::move(extra));
    options.cellDeadline = std::chrono::milliseconds(deadlineMs);
    options.retry.maxAttempts = retries + 1;
    options.checkpointPath = checkpointPath;
    options.resumePath = resumePath;
    // --replay-shards 1 (the default) leaves each config's own
    // shard count alone; only an explicit parallel request
    // overrides the grid.
    options.replayShards = replayShards > 1 ? replayShards : 0;
    options.replayBatchSize = replayBatch;

    // --convert-out exports the first workload's trace once it is
    // loaded, in the --trace-format (or extension-implied) format.
    // Benches that install their own onTrace hook must chain this
    // one (see cli.h); export failures warn rather than poison the
    // sweep — the replay results are still sound without the side
    // file.
    if (!convertOutPath.empty()) {
        const std::string out = convertOutPath;
        const trace::TraceFormat format = traceFormat;
        options.onTrace = [out, format](
                              std::size_t workload_index,
                              const trace::Trace &trace) {
            if (workload_index != 0)
                return;
            const Status written =
                trace::tryWriteTraceFile(out, trace, format);
            if (!written.ok())
                warn("--convert-out: " + written.message());
        };
    }

    // Arm telemetry for the run this options object configures.
    // Observability is strictly opt-in: without these flags the
    // enabled flag stays false and every instrument is a no-op.
    if (!metricsOutPath.empty() || !traceOutPath.empty())
        telemetry::setEnabled(true);
    if (!traceOutPath.empty())
        telemetry::setGlobalTraceWriter(&benchTraceWriter());
    return options;
}

void
BenchCli::emitReports(const SweepResult &sweep) const
{
    if (jsonPath)
        writeJsonFile(*jsonPath, sweep);
    if (csvPath)
        writeCsvFile(*csvPath, sweep);
    if (!metricsOutPath.empty())
        telemetry::writeMetricsFile(
            telemetry::Registry::global().snapshot(),
            metricsOutPath);
    if (!traceOutPath.empty())
        benchTraceWriter().writeFile(traceOutPath);
}

void
BenchCli::applyFiniteLogOverrides(
    stl::FiniteLogConfig &config) const
{
    if (logCapacityBytes != 0)
        config.capacityBytes = logCapacityBytes;
    if (segmentBytes != 0)
        config.segmentBytes = segmentBytes;
    if (cleanReserve != 0) {
        config.cleanReserveSegments = cleanReserve;
        // Keep the hysteresis valid: the target must exceed the
        // reserve, so follow a raised reserve upward.
        if (config.cleanTargetSegments <= cleanReserve)
            config.cleanTargetSegments = cleanReserve + 2;
    }
}

std::string
benchUsage(const std::string &name)
{
    return name +
           " [scale] [seed] [--jobs N|auto] [--json[=path]] "
           "[--csv[=path]] [--paranoid] [--deadline-ms N] "
           "[--retries N] [--checkpoint path] [--resume path] "
           "[--metrics-out file] [--trace-out file] "
           "[--fault-rate R] [--bad-sector-seed N] "
           "[--max-open-zones N] [--error-log-cap N] "
           "[--log-capacity N] [--segment-bytes N] "
           "[--clean-reserve N] "
           "[--replay-shards N] [--replay-batch N] "
           "[--trace-format F] [--convert-out file] [--help]";
}

std::string
benchHelp(const std::string &name)
{
    return
        "usage: " + benchUsage(name) + "\n"
        "\n"
        "positional arguments:\n"
        "  scale                workload scale factor (> 0)\n"
        "  seed                 workload generator seed (>= 0)\n"
        "\n"
        "options:\n"
        "  --jobs N|auto        sweep worker threads; 'auto' = "
        "hardware concurrency\n"
        "  --json[=path]        write the JSON report (default "
        "'-' = stdout)\n"
        "  --csv[=path]         write the CSV report (default "
        "'-' = stdout)\n"
        "  --paranoid           replay under a paranoid "
        "validating observer\n"
        "  --deadline-ms N      per-cell replay deadline in "
        "milliseconds (0 = off)\n"
        "  --retries N          retries allowed per retryable "
        "failure [0, 1000]\n"
        "  --checkpoint path    append completed cells to a "
        "CRC-guarded checkpoint\n"
        "  --resume path        restore completed cells from a "
        "checkpoint\n"
        "  --metrics-out file   write a telemetry metrics "
        "snapshot after the sweep\n"
        "                       (.prom/.txt = Prometheus text, "
        "else JSON; '-' = stdout)\n"
        "  --trace-out file     write a Chrome trace_event JSON "
        "trace of the sweep\n"
        "  --fault-rate R       zoned-device media-fault rate in "
        "[0, 1] (0 = off)\n"
        "  --bad-sector-seed N  seed of the device's bad-sector "
        "map (>= 0)\n"
        "  --max-open-zones N   zoned-device open-zone limit "
        "[1, 65536]\n"
        "  --error-log-cap N    zoned-device read-error-log bound "
        "[1, 1048576]\n"
        "                       (entries past the cap are counted, "
        "not kept)\n"
        "  --log-capacity N     finite-log capacity override in "
        "bytes [1 MiB, 1 TiB]\n"
        "                       (0/unset = the bench default)\n"
        "  --segment-bytes N    finite-log segment size override "
        "in bytes [64 KiB, 1 GiB]\n"
        "  --clean-reserve N    finite-log cleaning reserve "
        "override in segments [1, 1024]\n"
        "  --replay-shards N    parallel seek-classification "
        "shards per replay [1, 256]\n"
        "                       (1 = serial; results are "
        "byte-identical)\n"
        "  --replay-batch N     replay batch size in records "
        "[1, 65536] (default 256)\n"
        "  --trace-format F     format of trace files read or "
        "converted:\n"
        "                       auto, csv, lskt or lskc "
        "(default auto)\n"
        "  --convert-out file   export the first workload's trace "
        "to this path\n"
        "                       (format from the extension unless "
        "--trace-format is set)\n"
        "  --help               print this help and exit\n";
}

std::vector<std::string>
benchFlagNames()
{
    return {"--jobs",          "--json",
            "--csv",           "--paranoid",
            "--deadline-ms",   "--retries",
            "--checkpoint",    "--resume",
            "--metrics-out",   "--trace-out",
            "--fault-rate",    "--bad-sector-seed",
            "--max-open-zones", "--error-log-cap",
            "--log-capacity",  "--segment-bytes",
            "--clean-reserve", "--replay-shards",
            "--replay-batch",  "--trace-format",
            "--convert-out",   "--help"};
}

StatusOr<BenchCli>
tryParseBenchCli(int argc, char **argv, double default_scale)
{
    BenchCli cli;
    cli.profile.scale = default_scale;

    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];

        // Matches "--flag value" and "--flag=value"; a flag at the
        // end of the line yields an unset value, which the
        // consumer reports as missing.
        std::optional<std::string> value;
        auto matches = [&](const char *flag) {
            const std::size_t length = std::strlen(flag);
            if (arg == flag) {
                if (i + 1 < argc)
                    value = argv[++i];
                return true;
            }
            if (arg.size() > length &&
                arg.compare(0, length, flag) == 0 &&
                arg[length] == '=') {
                value = arg.substr(length + 1);
                return true;
            }
            return false;
        };

        if (arg == "--help" || arg == "-h") {
            cli.helpRequested = true;
            return cli;
        } else if (arg == "--paranoid") {
            cli.paranoid = true;
        } else if (arg == "--json") {
            cli.jsonPath = std::string("-");
        } else if (arg == "--csv") {
            cli.csvPath = std::string("-");
        } else if (matches("--json")) {
            cli.jsonPath = std::move(value);
        } else if (matches("--csv")) {
            cli.csvPath = std::move(value);
        } else if (matches("--jobs")) {
            if (!value)
                return invalidArgumentError(
                    "--jobs requires a value");
            if (*value == "auto") {
                cli.jobs = 0;
            } else {
                StatusOr<long long> jobs =
                    parseIntArg("--jobs", *value);
                if (!jobs.ok())
                    return jobs.status();
                if (jobs.value() < 1)
                    return invalidArgumentError(
                        "--jobs must be >= 1 (or 'auto'): got " +
                        *value);
                if (jobs.value() > 4096)
                    return invalidArgumentError(
                        "--jobs: implausible worker count " +
                        *value);
                cli.jobs = static_cast<int>(jobs.value());
            }
        } else if (matches("--deadline-ms")) {
            if (!value)
                return invalidArgumentError(
                    "--deadline-ms requires a value");
            StatusOr<long long> deadline =
                parseIntArg("--deadline-ms", *value);
            if (!deadline.ok())
                return deadline.status();
            if (deadline.value() < 0)
                return invalidArgumentError(
                    "--deadline-ms must be >= 0: got " + *value);
            cli.deadlineMs = deadline.value();
        } else if (matches("--retries")) {
            if (!value)
                return invalidArgumentError(
                    "--retries requires a value");
            StatusOr<long long> retries =
                parseIntArg("--retries", *value);
            if (!retries.ok())
                return retries.status();
            if (retries.value() < 0 || retries.value() > 1000)
                return invalidArgumentError(
                    "--retries must be in [0, 1000]: got " +
                    *value);
            cli.retries = static_cast<int>(retries.value());
        } else if (matches("--checkpoint")) {
            if (!value || value->empty())
                return invalidArgumentError(
                    "--checkpoint requires a path");
            cli.checkpointPath = std::move(*value);
        } else if (matches("--resume")) {
            if (!value || value->empty())
                return invalidArgumentError(
                    "--resume requires a path");
            cli.resumePath = std::move(*value);
        } else if (matches("--metrics-out")) {
            if (!value || value->empty())
                return invalidArgumentError(
                    "--metrics-out requires a path");
            cli.metricsOutPath = std::move(*value);
        } else if (matches("--trace-out")) {
            if (!value || value->empty())
                return invalidArgumentError(
                    "--trace-out requires a path");
            cli.traceOutPath = std::move(*value);
        } else if (matches("--fault-rate")) {
            if (!value)
                return invalidArgumentError(
                    "--fault-rate requires a value");
            StatusOr<double> rate =
                parseDoubleArg("--fault-rate", *value);
            if (!rate.ok())
                return rate.status();
            if (rate.value() < 0.0 || rate.value() > 1.0)
                return invalidArgumentError(
                    "--fault-rate must be in [0, 1]: got " +
                    *value);
            cli.faultRate = rate.value();
        } else if (matches("--bad-sector-seed")) {
            if (!value)
                return invalidArgumentError(
                    "--bad-sector-seed requires a value");
            StatusOr<long long> seed =
                parseIntArg("--bad-sector-seed", *value);
            if (!seed.ok())
                return seed.status();
            if (seed.value() < 0)
                return invalidArgumentError(
                    "--bad-sector-seed must be >= 0: got " +
                    *value);
            cli.badSectorSeed =
                static_cast<std::uint64_t>(seed.value());
        } else if (matches("--max-open-zones")) {
            if (!value)
                return invalidArgumentError(
                    "--max-open-zones requires a value");
            StatusOr<long long> zones =
                parseIntArg("--max-open-zones", *value);
            if (!zones.ok())
                return zones.status();
            if (zones.value() < 1 || zones.value() > 65536)
                return invalidArgumentError(
                    "--max-open-zones must be in [1, 65536]: "
                    "got " +
                    *value);
            cli.maxOpenZones =
                static_cast<std::uint32_t>(zones.value());
        } else if (matches("--error-log-cap")) {
            if (!value)
                return invalidArgumentError(
                    "--error-log-cap requires a value");
            StatusOr<long long> cap =
                parseIntArg("--error-log-cap", *value);
            if (!cap.ok())
                return cap.status();
            if (cap.value() < 1 || cap.value() > 1048576)
                return invalidArgumentError(
                    "--error-log-cap must be in [1, 1048576]: "
                    "got " +
                    *value);
            cli.errorLogCap =
                static_cast<std::size_t>(cap.value());
        } else if (matches("--log-capacity")) {
            if (!value)
                return invalidArgumentError(
                    "--log-capacity requires a value");
            StatusOr<long long> capacity =
                parseIntArg("--log-capacity", *value);
            if (!capacity.ok())
                return capacity.status();
            if (capacity.value() <
                    static_cast<long long>(kMiB) ||
                capacity.value() >
                    static_cast<long long>(1024 * kGiB))
                return invalidArgumentError(
                    "--log-capacity must be in [1 MiB, 1 TiB] "
                    "bytes: got " +
                    *value);
            cli.logCapacityBytes =
                static_cast<std::uint64_t>(capacity.value());
        } else if (matches("--segment-bytes")) {
            if (!value)
                return invalidArgumentError(
                    "--segment-bytes requires a value");
            StatusOr<long long> segment =
                parseIntArg("--segment-bytes", *value);
            if (!segment.ok())
                return segment.status();
            if (segment.value() <
                    static_cast<long long>(64 * kKiB) ||
                segment.value() > static_cast<long long>(kGiB))
                return invalidArgumentError(
                    "--segment-bytes must be in [64 KiB, 1 GiB] "
                    "bytes: got " +
                    *value);
            cli.segmentBytes =
                static_cast<std::uint64_t>(segment.value());
        } else if (matches("--clean-reserve")) {
            if (!value)
                return invalidArgumentError(
                    "--clean-reserve requires a value");
            StatusOr<long long> reserve =
                parseIntArg("--clean-reserve", *value);
            if (!reserve.ok())
                return reserve.status();
            if (reserve.value() < 1 || reserve.value() > 1024)
                return invalidArgumentError(
                    "--clean-reserve must be in [1, 1024]: got " +
                    *value);
            cli.cleanReserve =
                static_cast<std::uint32_t>(reserve.value());
        } else if (matches("--replay-shards")) {
            if (!value)
                return invalidArgumentError(
                    "--replay-shards requires a value");
            StatusOr<long long> shards =
                parseIntArg("--replay-shards", *value);
            if (!shards.ok())
                return shards.status();
            if (shards.value() < 1 || shards.value() > 256)
                return invalidArgumentError(
                    "--replay-shards must be in [1, 256]: got " +
                    *value);
            cli.replayShards = static_cast<int>(shards.value());
        } else if (matches("--replay-batch")) {
            if (!value)
                return invalidArgumentError(
                    "--replay-batch requires a value");
            StatusOr<long long> batch =
                parseIntArg("--replay-batch", *value);
            if (!batch.ok())
                return batch.status();
            if (batch.value() < 1 || batch.value() > 65536)
                return invalidArgumentError(
                    "--replay-batch must be in [1, 65536]: got " +
                    *value);
            cli.replayBatch = static_cast<int>(batch.value());
        } else if (matches("--trace-format")) {
            if (!value)
                return invalidArgumentError(
                    "--trace-format requires a value");
            StatusOr<trace::TraceFormat> format =
                trace::parseTraceFormat(*value);
            if (!format.ok())
                return format.status();
            cli.traceFormat = format.value();
        } else if (matches("--convert-out")) {
            if (!value || value->empty())
                return invalidArgumentError(
                    "--convert-out requires a path");
            cli.convertOutPath = std::move(*value);
        } else if (arg.rfind("--", 0) == 0) {
            return invalidArgumentError("unknown option: " + arg);
        } else if (positional == 0) {
            StatusOr<double> scale = parseDoubleArg("scale", arg);
            if (!scale.ok())
                return scale.status();
            if (scale.value() <= 0.0)
                return invalidArgumentError(
                    "scale must be > 0: got " + arg);
            cli.profile.scale = scale.value();
            ++positional;
        } else if (positional == 1) {
            StatusOr<long long> seed = parseIntArg("seed", arg);
            if (!seed.ok())
                return seed.status();
            if (seed.value() < 0)
                return invalidArgumentError(
                    "seed must be >= 0: got " + arg);
            cli.profile.seed =
                static_cast<std::uint64_t>(seed.value());
            ++positional;
        } else {
            return invalidArgumentError("unexpected argument: " +
                                        arg);
        }
    }
    return cli;
}

std::optional<BenchCli>
parseBenchCli(int argc, char **argv, const std::string &usage,
              double default_scale)
{
    StatusOr<BenchCli> cli =
        tryParseBenchCli(argc, argv, default_scale);
    if (!cli.ok()) {
        std::cerr << cli.status().message() << "\nusage: " << usage
                  << "\n";
        return std::nullopt;
    }
    if (cli.value().helpRequested) {
        // The usage string names the binary as "<name> [args...]";
        // reuse the leading word so help matches the invocation.
        std::cout << benchHelp(usage.substr(0, usage.find(' ')));
        std::exit(0);
    }
    return std::move(cli).value();
}

} // namespace logseek::sweep
