#include "cli.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>

#include "analysis/validating_observer.h"
#include "sweep/report.h"

namespace logseek::sweep
{

int
BenchCli::resolvedJobs() const
{
    if (jobs > 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ObserverFactory
BenchCli::observerFactory(ObserverFactory extra) const
{
    if (!paranoid && !extra)
        return nullptr;
    const bool add_validator = paranoid;
    return [add_validator, extra = std::move(extra)](
               const RunKey &key) {
        std::vector<std::unique_ptr<stl::SimObserver>> observers;
        if (add_validator)
            observers.push_back(
                std::make_unique<analysis::ValidatingObserver>(
                    analysis::ValidatingObserver::Options{
                        .paranoid = true, .maxRecorded = 16}));
        if (extra) {
            auto more = extra(key);
            for (auto &observer : more)
                observers.push_back(std::move(observer));
        }
        return observers;
    };
}

void
BenchCli::emitReports(const SweepResult &sweep) const
{
    if (jsonPath)
        writeJsonFile(*jsonPath, sweep);
    if (csvPath)
        writeCsvFile(*csvPath, sweep);
}

std::optional<BenchCli>
parseBenchCli(int argc, char **argv, const std::string &usage,
              double default_scale)
{
    BenchCli cli;
    cli.profile.scale = default_scale;

    auto fail = [&usage](const std::string &what) {
        std::cerr << what << "\nusage: " << usage << "\n";
        return std::nullopt;
    };

    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--paranoid") == 0) {
            cli.paranoid = true;
        } else if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc)
                return fail("--jobs requires a value");
            cli.jobs = std::atoi(argv[++i]);
            if (cli.jobs < 0)
                return fail("--jobs must be >= 0");
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            cli.jobs = std::atoi(arg + 7);
            if (cli.jobs < 0)
                return fail("--jobs must be >= 0");
        } else if (std::strcmp(arg, "--json") == 0) {
            cli.jsonPath = "-";
        } else if (std::strncmp(arg, "--json=", 7) == 0) {
            cli.jsonPath = std::string(arg + 7);
        } else if (std::strcmp(arg, "--csv") == 0) {
            cli.csvPath = "-";
        } else if (std::strncmp(arg, "--csv=", 6) == 0) {
            cli.csvPath = std::string(arg + 6);
        } else if (std::strncmp(arg, "--", 2) == 0) {
            return fail(std::string("unknown option: ") + arg);
        } else if (positional == 0) {
            cli.profile.scale = std::atof(arg);
            ++positional;
        } else if (positional == 1) {
            cli.profile.seed =
                static_cast<std::uint64_t>(std::atoll(arg));
            ++positional;
        } else {
            return fail(std::string("unexpected argument: ") + arg);
        }
    }
    return cli;
}

} // namespace logseek::sweep
