#include "task_pool.h"

#include <algorithm>
#include <utility>

namespace logseek::sweep
{

namespace
{

/** Which pool (if any) the current thread is a worker of. */
struct WorkerIdentity
{
    const void *pool = nullptr;
    std::size_t index = 0;
};

thread_local WorkerIdentity t_identity;

} // namespace

int
currentPoolWorker()
{
    return t_identity.pool == nullptr
               ? -1
               : static_cast<int>(t_identity.index);
}

TaskPool::TaskPool(unsigned workers)
{
    const std::size_t count = std::max(1u, workers);
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

TaskPool::~TaskPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(workMutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
TaskPool::submit(std::function<void()> task)
{
    // A task submitted from inside a worker lands on that worker's
    // own deque (run LIFO locally, stolen FIFO by idle peers);
    // external submissions are dealt round-robin.
    std::size_t target;
    if (t_identity.pool == this)
        target = t_identity.index;
    else
        target = nextWorker_.fetch_add(1) % workers_.size();

    {
        std::lock_guard<std::mutex> lock(workMutex_);
        ++pending_;
    }
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->queue.push_back(std::move(task));
    }
    {
        // Lock-then-notify so a worker between its empty-queue
        // check and its wait cannot miss this submission.
        std::lock_guard<std::mutex> lock(workMutex_);
    }
    workCv_.notify_one();
}

void
TaskPool::wait()
{
    std::unique_lock<std::mutex> lock(workMutex_);
    doneCv_.wait(lock, [this] { return pending_ == 0; });
}

bool
TaskPool::anyQueued()
{
    for (const auto &worker : workers_) {
        std::lock_guard<std::mutex> lock(worker->mutex);
        if (!worker->queue.empty())
            return true;
    }
    return false;
}

bool
TaskPool::runOneTask(std::size_t self)
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(workers_[self]->mutex);
        if (!workers_[self]->queue.empty()) {
            task = std::move(workers_[self]->queue.back());
            workers_[self]->queue.pop_back();
        }
    }
    if (!task) {
        // Own deque empty: steal the oldest task of the nearest
        // busy peer.
        for (std::size_t step = 1;
             step < workers_.size() && !task; ++step) {
            const std::size_t victim =
                (self + step) % workers_.size();
            std::lock_guard<std::mutex> lock(
                workers_[victim]->mutex);
            if (!workers_[victim]->queue.empty()) {
                task = std::move(workers_[victim]->queue.front());
                workers_[victim]->queue.pop_front();
                steals_.fetch_add(1);
            }
        }
    }
    if (!task)
        return false;

    task();

    {
        std::lock_guard<std::mutex> lock(workMutex_);
        --pending_;
        if (pending_ == 0)
            doneCv_.notify_all();
    }
    return true;
}

void
TaskPool::workerLoop(std::size_t self)
{
    t_identity = {this, self};
    while (true) {
        if (runOneTask(self))
            continue;
        std::unique_lock<std::mutex> lock(workMutex_);
        workCv_.wait(lock,
                     [this] { return stop_ || anyQueued(); });
        if (stop_ && !anyQueued())
            return;
    }
}

} // namespace logseek::sweep
