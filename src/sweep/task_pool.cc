#include "task_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/logging.h"

namespace logseek::sweep
{

namespace
{

/** Which pool (if any) the current thread is a worker of. */
struct WorkerIdentity
{
    const void *pool = nullptr;
    std::size_t index = 0;
};

thread_local WorkerIdentity t_identity;

} // namespace

int
currentPoolWorker()
{
    return t_identity.pool == nullptr
               ? -1
               : static_cast<int>(t_identity.index);
}

TaskPool::TaskPool(unsigned workers)
{
    auto &registry = telemetry::Registry::global();
    queueDepth_ = &registry.gauge("sweep_queue_depth");
    tasksTotal_ = &registry.counter("sweep_tasks_total");
    stealsTotal_ = &registry.counter("sweep_steals_total");
    exceptionsTotal_ =
        &registry.counter("sweep_task_exceptions_total");
    watchdogsTotal_ =
        &registry.counter("sweep_watchdog_fired_total");

    const std::size_t count = std::max(1u, workers);
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

TaskPool::~TaskPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(workMutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &thread : threads_)
        thread.join();

    // The watchdog outlives the workers so a deadline armed by the
    // very last task can still fire; only now is it safe to stop.
    {
        std::lock_guard<std::mutex> lock(watchMutex_);
        watchStop_ = true;
    }
    watchCv_.notify_all();
    if (watchThread_.joinable())
        watchThread_.join();
}

void
TaskPool::submit(std::function<void()> task)
{
    // A task submitted from inside a worker lands on that worker's
    // own deque (run LIFO locally, stolen FIFO by idle peers);
    // external submissions are dealt round-robin.
    std::size_t target;
    if (t_identity.pool == this)
        target = t_identity.index;
    else
        target = nextWorker_.fetch_add(1) % workers_.size();

    {
        std::lock_guard<std::mutex> lock(workMutex_);
        ++pending_;
        queueDepth_->set(static_cast<std::int64_t>(pending_));
    }
    tasksTotal_->add();
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->queue.push_back(std::move(task));
    }
    {
        // Lock-then-notify so a worker between its empty-queue
        // check and its wait cannot miss this submission.
        std::lock_guard<std::mutex> lock(workMutex_);
    }
    workCv_.notify_one();
}

void
TaskPool::wait()
{
    std::unique_lock<std::mutex> lock(workMutex_);
    doneCv_.wait(lock, [this] { return pending_ == 0; });
}

bool
TaskPool::anyQueued()
{
    for (const auto &worker : workers_) {
        std::lock_guard<std::mutex> lock(worker->mutex);
        if (!worker->queue.empty())
            return true;
    }
    return false;
}

bool
TaskPool::runOneTask(std::size_t self)
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(workers_[self]->mutex);
        if (!workers_[self]->queue.empty()) {
            task = std::move(workers_[self]->queue.back());
            workers_[self]->queue.pop_back();
        }
    }
    if (!task) {
        // Own deque empty: steal the oldest task of the nearest
        // busy peer.
        for (std::size_t step = 1;
             step < workers_.size() && !task; ++step) {
            const std::size_t victim =
                (self + step) % workers_.size();
            std::lock_guard<std::mutex> lock(
                workers_[victim]->mutex);
            if (!workers_[victim]->queue.empty()) {
                task = std::move(workers_[victim]->queue.front());
                workers_[victim]->queue.pop_front();
                steals_.fetch_add(1);
                stealsTotal_->add();
            }
        }
    }
    if (!task)
        return false;

    // Contain anything a task throws: an escaped exception must not
    // leak the pending count (wait() would block forever and the
    // destructor would deadlock) or kill the worker thread.
    try {
        task();
    } catch (const std::exception &e) {
        taskExceptions_.fetch_add(1);
        exceptionsTotal_->add();
        warn(std::string("task pool: task threw: ") + e.what());
    } catch (...) {
        taskExceptions_.fetch_add(1);
        exceptionsTotal_->add();
        warn("task pool: task threw a non-std exception");
    }

    {
        std::lock_guard<std::mutex> lock(workMutex_);
        --pending_;
        queueDepth_->set(static_cast<std::int64_t>(pending_));
        if (pending_ == 0)
            doneCv_.notify_all();
    }
    return true;
}

void
TaskPool::workerLoop(std::size_t self)
{
    t_identity = {this, self};
    while (true) {
        if (runOneTask(self))
            continue;
        std::unique_lock<std::mutex> lock(workMutex_);
        workCv_.wait(lock,
                     [this] { return stop_ || anyQueued(); });
        if (stop_ && !anyQueued())
            return;
    }
}

TaskPool::WatchId
TaskPool::armWatchdog(std::chrono::steady_clock::time_point deadline,
                      std::function<void()> on_expire)
{
    std::lock_guard<std::mutex> lock(watchMutex_);
    const WatchId id = nextWatchId_++;
    watches_.emplace(id, Watch{deadline, std::move(on_expire)});
    // The watchdog thread is started lazily: sweeps without
    // deadlines never pay for it.
    if (!watchThread_.joinable())
        watchThread_ = std::thread([this] { watchdogLoop(); });
    watchCv_.notify_one();
    return id;
}

void
TaskPool::disarmWatchdog(WatchId id)
{
    std::lock_guard<std::mutex> lock(watchMutex_);
    watches_.erase(id);
    watchCv_.notify_one();
}

void
TaskPool::watchdogLoop()
{
    std::unique_lock<std::mutex> lock(watchMutex_);
    while (!watchStop_) {
        if (watches_.empty()) {
            watchCv_.wait(lock, [this] {
                return watchStop_ || !watches_.empty();
            });
            continue;
        }
        auto earliest = watches_.begin();
        for (auto it = std::next(earliest);
             it != watches_.end(); ++it)
            if (it->second.deadline < earliest->second.deadline)
                earliest = it;
        const auto when = earliest->second.deadline;
        if (std::chrono::steady_clock::now() < when) {
            // Woken early by an arm/disarm or the deadline set
            // changing; loop to re-evaluate the earliest watch.
            watchCv_.wait_until(lock, when);
            continue;
        }

        std::vector<std::function<void()>> expired;
        const auto now = std::chrono::steady_clock::now();
        for (auto it = watches_.begin(); it != watches_.end();) {
            if (it->second.deadline <= now) {
                expired.push_back(std::move(it->second.onExpire));
                it = watches_.erase(it);
            } else {
                ++it;
            }
        }
        // Callbacks run outside the lock so they may arm or disarm
        // other watches without deadlocking.
        lock.unlock();
        for (auto &on_expire : expired) {
            watchdogsFired_.fetch_add(1);
            watchdogsTotal_->add();
            on_expire();
        }
        lock.lock();
    }
}

stl::ShardExecutor
makeShardExecutor(TaskPool &pool)
{
    return [&pool](std::size_t chunks,
                   const std::function<void(std::size_t)> &fn) {
        if (chunks == 0)
            return;
        if (chunks == 1) {
            fn(0);
            return;
        }

        // Stack latch: the executor waits for every submitted
        // chunk before returning, so the tasks' references to it
        // (and to fn) cannot dangle.
        struct Latch
        {
            std::mutex mutex;
            std::condition_variable cv;
            std::size_t remaining;
            std::exception_ptr error;
        } latch;
        latch.remaining = chunks - 1;

        for (std::size_t k = 1; k < chunks; ++k) {
            pool.submit([&latch, &fn, k] {
                std::exception_ptr error;
                try {
                    fn(k);
                } catch (...) {
                    error = std::current_exception();
                }
                std::lock_guard<std::mutex> lock(latch.mutex);
                if (error && !latch.error)
                    latch.error = error;
                if (--latch.remaining == 0)
                    latch.cv.notify_all();
            });
        }

        // The caller is chunk 0's worker. If it throws, still wait
        // for the others — they hold references into this frame.
        std::exception_ptr own;
        try {
            fn(0);
        } catch (...) {
            own = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(latch.mutex);
            latch.cv.wait(lock,
                          [&] { return latch.remaining == 0; });
            if (!own)
                own = latch.error;
        }
        if (own)
            std::rethrow_exception(own);
    };
}

} // namespace logseek::sweep
