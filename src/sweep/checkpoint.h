/**
 * @file
 * Checkpoint payload codec for sweep cells.
 *
 * One CellRecord is the durable form of one completed (workload,
 * config) cell: its identity, outcome taxonomy, attempt count, and
 * the full SimResult with doubles stored as IEEE-754 bit patterns so
 * a resumed sweep reproduces the original grid byte for byte. The
 * payloads are carried inside the CRC-guarded frames of
 * util/checkpoint.h; this header only encodes and decodes them.
 */

#ifndef LOGSEEK_SWEEP_CHECKPOINT_H
#define LOGSEEK_SWEEP_CHECKPOINT_H

#include <string>
#include <string_view>

#include "sweep/sweep_runner.h"
#include "util/status.h"

namespace logseek::sweep
{

/** Current cell-record encoding version. Version 2 appended the
 *  SimResult device counters (zoned-device realism layer);
 *  version 4 appended the GC victim statistics. */
inline constexpr std::uint8_t kCellRecordVersion = 4;

/** The durable form of one completed sweep cell. */
struct CellRecord
{
    /** Grid identity; matched by name on resume, so the record
     *  survives grid reordering between runs. */
    std::string workload;
    std::string configLabel;

    CellOutcome outcome = CellOutcome::Ok;
    std::uint32_t attempts = 1;
    std::uint64_t ops = 0;
    double wallSec = 0.0;

    stl::SimResult result;
};

/** Serialize a record to the version-1 little-endian payload. */
std::string encodeCellRecord(const CellRecord &record);

/**
 * Parse a payload; DataLoss on a bad version, a malformed field, or
 * trailing bytes (a CRC-valid frame should decode exactly).
 */
StatusOr<CellRecord> decodeCellRecord(std::string_view payload);

} // namespace logseek::sweep

#endif // LOGSEEK_SWEEP_CHECKPOINT_H
