#include "checkpoint.h"

#include <cstring>

namespace logseek::sweep
{

namespace
{

void
putU8(std::string &out, std::uint8_t value)
{
    out.push_back(static_cast<char>(value));
}

void
putU32(std::string &out, std::uint32_t value)
{
    for (std::size_t i = 0; i < 4; ++i)
        out.push_back(
            static_cast<char>((value >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t value)
{
    for (std::size_t i = 0; i < 8; ++i)
        out.push_back(
            static_cast<char>((value >> (8 * i)) & 0xff));
}

void
putF64(std::string &out, double value)
{
    // Bit pattern, not decimal text: a restored cell must render
    // to exactly the same report bytes as the original run.
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    putU64(out, bits);
}

void
putStr(std::string &out, const std::string &value)
{
    putU32(out, static_cast<std::uint32_t>(value.size()));
    out.append(value);
}

/** Cursor over a payload; sticky-fails on any short read. */
struct Reader
{
    std::string_view in;
    std::size_t pos = 0;
    bool failed = false;

    std::uint8_t
    u8()
    {
        if (failed || in.size() - pos < 1) {
            failed = true;
            return 0;
        }
        return static_cast<std::uint8_t>(in[pos++]);
    }

    std::uint32_t
    u32()
    {
        if (failed || in.size() - pos < 4) {
            failed = true;
            return 0;
        }
        std::uint32_t value = 0;
        for (std::size_t i = 0; i < 4; ++i)
            value |= static_cast<std::uint32_t>(
                         static_cast<unsigned char>(in[pos + i]))
                     << (8 * i);
        pos += 4;
        return value;
    }

    std::uint64_t
    u64()
    {
        if (failed || in.size() - pos < 8) {
            failed = true;
            return 0;
        }
        std::uint64_t value = 0;
        for (std::size_t i = 0; i < 8; ++i)
            value |= static_cast<std::uint64_t>(
                         static_cast<unsigned char>(in[pos + i]))
                     << (8 * i);
        pos += 8;
        return value;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double value = 0.0;
        std::memcpy(&value, &bits, sizeof value);
        return value;
    }

    std::string
    str()
    {
        const std::uint32_t length = u32();
        if (failed || in.size() - pos < length) {
            failed = true;
            return {};
        }
        std::string value(in.substr(pos, length));
        pos += length;
        return value;
    }
};

void
encodeSimResult(std::string &out, const stl::SimResult &result)
{
    putStr(out, result.workload);
    putStr(out, result.configLabel);
    putU64(out, result.reads);
    putU64(out, result.writes);
    putU64(out, result.readSeeks);
    putU64(out, result.writeSeeks);
    putU64(out, result.fragmentedReads);
    putU64(out, result.readFragments);
    putU64(out, result.cacheHits);
    putU64(out, result.cacheMisses);
    putU64(out, result.prefetchHits);
    putU64(out, result.defragRewrites);
    putU64(out, result.defragBytes);
    putU64(out, result.mediaReadBytes);
    putU64(out, result.mediaWriteBytes);
    putU64(out, result.hostWriteBytes);
    putU64(out, result.cleaningReadBytes);
    putU64(out, result.cleaningWriteBytes);
    putU64(out, result.cleaningSeeks);
    putU64(out, result.cleaningMerges);
    putF64(out, result.seekTimeSec);
    putU64(out, result.staticFragments);
    putU64(out, result.deviceReadRetries);
    putU64(out, result.deviceRecoveredSectors);
    putU64(out, result.deviceFailedReadSectors);
    putU64(out, result.deviceDegradedReads);
    putU64(out, result.deviceFailedWriteSectors);
    putU64(out, result.deviceZoneResets);
    putU64(out, result.deviceWpViolations);
    putU64(out, result.deviceOutOfPolicyWrites);
    putU64(out, result.deviceGrownDefects);
    putU64(out, result.deviceReadOnlyZones);
    putU64(out, result.deviceOfflineZones);
    putU64(out, result.deviceErrorLogDropped);
    putU64(out, result.gcVictimLiveBytes);
    putU64(out, result.gcVictimSpanBytes);
}

void
decodeSimResult(Reader &reader, stl::SimResult &result)
{
    result.workload = reader.str();
    result.configLabel = reader.str();
    result.reads = reader.u64();
    result.writes = reader.u64();
    result.readSeeks = reader.u64();
    result.writeSeeks = reader.u64();
    result.fragmentedReads = reader.u64();
    result.readFragments = reader.u64();
    result.cacheHits = reader.u64();
    result.cacheMisses = reader.u64();
    result.prefetchHits = reader.u64();
    result.defragRewrites = reader.u64();
    result.defragBytes = reader.u64();
    result.mediaReadBytes = reader.u64();
    result.mediaWriteBytes = reader.u64();
    result.hostWriteBytes = reader.u64();
    result.cleaningReadBytes = reader.u64();
    result.cleaningWriteBytes = reader.u64();
    result.cleaningSeeks = reader.u64();
    result.cleaningMerges = reader.u64();
    result.seekTimeSec = reader.f64();
    result.staticFragments =
        static_cast<std::size_t>(reader.u64());
    result.deviceReadRetries = reader.u64();
    result.deviceRecoveredSectors = reader.u64();
    result.deviceFailedReadSectors = reader.u64();
    result.deviceDegradedReads = reader.u64();
    result.deviceFailedWriteSectors = reader.u64();
    result.deviceZoneResets = reader.u64();
    result.deviceWpViolations = reader.u64();
    result.deviceOutOfPolicyWrites = reader.u64();
    result.deviceGrownDefects = reader.u64();
    result.deviceReadOnlyZones = reader.u64();
    result.deviceOfflineZones = reader.u64();
    result.deviceErrorLogDropped = reader.u64();
    result.gcVictimLiveBytes = reader.u64();
    result.gcVictimSpanBytes = reader.u64();
}

} // namespace

std::string
encodeCellRecord(const CellRecord &record)
{
    std::string out;
    putU8(out, kCellRecordVersion);
    putStr(out, record.workload);
    putStr(out, record.configLabel);
    putU8(out, static_cast<std::uint8_t>(record.outcome));
    putU32(out, record.attempts);
    putU64(out, record.ops);
    putF64(out, record.wallSec);
    encodeSimResult(out, record.result);
    return out;
}

StatusOr<CellRecord>
decodeCellRecord(std::string_view payload)
{
    Reader reader{payload};
    const std::uint8_t version = reader.u8();
    if (!reader.failed && version != kCellRecordVersion)
        return dataLossError(
            "cell record: unsupported version " +
            std::to_string(version));

    CellRecord record;
    record.workload = reader.str();
    record.configLabel = reader.str();
    const std::uint8_t outcome = reader.u8();
    record.attempts = reader.u32();
    record.ops = reader.u64();
    record.wallSec = reader.f64();
    decodeSimResult(reader, record.result);

    if (reader.failed)
        return dataLossError("cell record: truncated payload");
    if (reader.pos != payload.size())
        return dataLossError("cell record: trailing bytes");
    if (outcome >
        static_cast<std::uint8_t>(CellOutcome::Skipped))
        return dataLossError("cell record: invalid outcome " +
                             std::to_string(outcome));
    record.outcome = static_cast<CellOutcome>(outcome);
    return record;
}

} // namespace logseek::sweep
