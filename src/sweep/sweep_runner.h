/**
 * @file
 * Parallel (workload × config) sweep execution.
 *
 * Every figure and ablation in the paper is a sweep: a set of
 * workloads replayed under a matrix of simulator configurations.
 * SweepRunner loads each workload exactly once — as an immutable
 * TraceSource shared read-only across a work-stealing thread pool,
 * each cell pulling records through its own cursor — replays every
 * (workload, config) cell with a fresh per-run engine and fresh
 * per-run observers (from a factory — observers are stateful and
 * not thread-safe, so they are never shared between runs), and
 * returns rows in deterministic (workload, config) order: the
 * results are byte-identical whatever the job count. A workload's
 * source is released when its last cell completes, so peak memory
 * tracks in-flight workloads, not the whole sweep.
 */

#ifndef LOGSEEK_SWEEP_SWEEP_RUNNER_H
#define LOGSEEK_SWEEP_SWEEP_RUNNER_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stl/simulator.h"
#include "trace/input.h"
#include "trace/trace.h"
#include "util/cancellation.h"
#include "util/retry.h"
#include "util/status.h"
#include "workloads/profiles.h"

namespace logseek::sweep
{

/** One workload of a sweep: a name plus a one-shot trace loader. */
struct WorkloadSpec
{
    std::string name;

    /**
     * Produces the trace; called exactly once, on a pool worker.
     * Must be safe to call concurrently with other specs' loaders.
     * Ignored when loadSource is set.
     */
    std::function<trace::Trace()> load;

    /**
     * Produces a shareable TraceSource instead of an in-RAM Trace;
     * preferred over `load` when set. Also called exactly once, on
     * a pool worker; the runner shares the source across the
     * workload's cells and drops its references as cells complete,
     * so the source (trace memory or file mapping) is released
     * when the last dependent cell finishes — not at sweep end.
     */
    std::function<std::shared_ptr<const trace::TraceSource>()>
        loadSource;

    /** A named synthetic profile (workloads::makeWorkload). */
    static WorkloadSpec profile(const std::string &name,
                                const workloads::ProfileOptions &options);

    /**
     * A derived workload: load the named profile, then transform
     * it (e.g. elevator reordering for NCQ baselines).
     */
    static WorkloadSpec
    derived(const std::string &label, const std::string &profile_name,
            const workloads::ProfileOptions &options,
            std::function<trace::Trace(const trace::Trace &)> transform);

    /**
     * A workload backed by any TraceSource — an mmap'd LSKC file
     * (trace::LskcSource) or a streaming generator
     * (workloads::StreamSource).
     */
    static WorkloadSpec
    source(std::string name,
           std::function<std::shared_ptr<const trace::TraceSource>()>
               load_source);
};

/** One column of a sweep: a label plus a config (factory). */
struct ConfigSpec
{
    std::string label;

    /**
     * Builds the SimConfig for one workload. Receives the loaded
     * trace so configs can be sized from trace properties (e.g. a
     * finite log scaled to the written volume). Must be pure.
     * Only usable on RAM-backed workloads; makeSource wins when
     * both are set.
     */
    std::function<stl::SimConfig(const trace::Trace &)> make;

    /**
     * Source-aware factory: sees the workload's TraceSource, so it
     * also works for streamed/mmap'd workloads that never
     * materialize a Trace. Must be pure.
     */
    std::function<stl::SimConfig(const trace::TraceSource &)>
        makeSource;

    /** A trace-independent configuration. */
    static ConfigSpec fixed(std::string label, stl::SimConfig config);

    /** A configuration computed per workload from its trace. */
    static ConfigSpec
    deferred(std::string label,
             std::function<stl::SimConfig(const trace::Trace &)> make);

    /** A configuration computed per workload from its source. */
    static ConfigSpec deferredSource(
        std::string label,
        std::function<stl::SimConfig(const trace::TraceSource &)>
            make);
};

/**
 * How one sweep cell ended — the failure taxonomy surfaced in
 * reports. Ok and RetriedOk are the success states; the rest say
 * why the cell has no result.
 */
enum class CellOutcome : std::uint8_t
{
    Ok = 0,   ///< succeeded on the first attempt
    RetriedOk, ///< succeeded after >= 1 retried transient fault
    Failed,    ///< permanent error (bad trace, internal bug, ...)
    TimedOut,  ///< the per-cell deadline expired mid-replay
    Skipped,   ///< never ran: the sweep was cancelled first
};

/** Printable name of a CellOutcome ("OK", "RETRIED_OK", ...). */
const char *toString(CellOutcome outcome);

/** The outcome a (possibly failed) Status classifies to. */
CellOutcome classifyOutcome(const Status &status, int attempts);

/** Identity of one run within the sweep grid. */
struct RunKey
{
    std::size_t workloadIndex = 0;
    std::size_t configIndex = 0;
    std::string workload;
    std::string configLabel;
};

/**
 * Factory producing the observers for one run. Called once per
 * run, on the worker that executes it; the returned observers are
 * registered for that run only and handed back (with their final
 * state) on the run's row. May be empty.
 */
using ObserverFactory =
    std::function<std::vector<std::unique_ptr<stl::SimObserver>>(
        const RunKey &)>;

/** One (workload, config) cell of a completed sweep. */
struct RunRow
{
    RunKey key;

    /** ok() if the run completed; the failure reason otherwise. */
    Status status;

    /** Taxonomy of how the cell ended; consistent with status. */
    CellOutcome outcome = CellOutcome::Ok;

    /** Attempts spent on the cell (trace load + replay); > 1 means
     *  a transient fault was retried. */
    int attempts = 1;

    /** True when the cell was restored from a resume checkpoint
     *  instead of being replayed. */
    bool restored = false;

    /** Aggregate replay results; valid only when status is ok. */
    stl::SimResult result;

    /** Observers created for this run, in factory order, with
     *  their post-run state. */
    std::vector<std::unique_ptr<stl::SimObserver>> observers;

    /** Wall-clock of the replay (excludes trace loading). */
    double wallSec = 0.0;

    /** Requests replayed (the source's size hint when it has one,
     *  otherwise the completed replay's read + write count). */
    std::uint64_t ops = 0;

    double
    opsPerSec() const
    {
        return wallSec > 0.0 ? static_cast<double>(ops) / wallSec
                             : 0.0;
    }
};

/**
 * First observer of the given dynamic type on a row, or null.
 * Benches use this to recover their per-run observers regardless
 * of what else (e.g. a --paranoid validator) the factory added.
 */
template <class Observer>
Observer *
findObserver(const RunRow &row)
{
    for (const auto &observer : row.observers)
        if (auto *typed = dynamic_cast<Observer *>(observer.get()))
            return typed;
    return nullptr;
}

/** Whole-sweep telemetry. */
struct SweepTelemetry
{
    /** End-to-end wall-clock including loading (seconds). */
    double wallSec = 0.0;

    /** Sum of per-run replay wall-clock (seconds). */
    double replaySec = 0.0;

    std::uint64_t runs = 0;
    std::uint64_t failedRuns = 0;
    std::uint64_t ops = 0;
    int jobs = 1;

    /** Tasks the pool's idle workers stole. */
    std::uint64_t steals = 0;

    /** Cells that succeeded only after retrying a transient
     *  fault (outcome RETRIED_OK). */
    std::uint64_t retriedRuns = 0;

    /** Cells whose per-cell deadline expired (TIMED_OUT). */
    std::uint64_t timedOutRuns = 0;

    /** Cells never run because the sweep was cancelled (SKIPPED). */
    std::uint64_t skippedRuns = 0;

    /** Cells restored from a resume checkpoint, not replayed. */
    std::uint64_t restoredRuns = 0;

    /** Aggregate replay throughput over the sweep's wall-clock. */
    double
    opsPerSec() const
    {
        return wallSec > 0.0 ? static_cast<double>(ops) / wallSec
                             : 0.0;
    }
};

/** All rows of a completed sweep, in (workload, config) order. */
struct SweepResult
{
    std::vector<std::string> workloads;
    std::vector<std::string> configs;
    std::vector<RunRow> rows;
    SweepTelemetry telemetry;

    /** The cell for workload w, config c. */
    const RunRow &row(std::size_t w, std::size_t c) const;

    /**
     * Seek amplification of cell (w, c) against cell
     * (w, baseline_c); nullopt when either run failed or the
     * baseline had no seeks.
     */
    std::optional<double> safVs(std::size_t w, std::size_t c,
                                std::size_t baseline_c = 0) const;
};

/** Execution options. */
struct SweepOptions
{
    /** Worker threads; values < 1 are clamped to 1. */
    int jobs = 1;

    /** Per-run observer factory; may be null. */
    ObserverFactory observerFactory;

    /**
     * Called on a pool worker right after a workload's trace is
     * loaded, before any of its runs. Different workloads may be
     * in flight concurrently; the hook must only touch per-
     * workload state (e.g. its own slot of a pre-sized vector).
     * Benches that analyze traces without replaying use this as
     * the work body, with an empty config list. Only fires for
     * RAM-backed workloads (TraceSource::memoryTrace() non-null);
     * streamed workloads never materialize a Trace to hand it.
     */
    std::function<void(std::size_t workload_index,
                       const trace::Trace &trace)>
        onTrace;

    /**
     * Per-cell replay deadline; a cell whose replay overstays it is
     * cooperatively cancelled and reported TIMED_OUT. Zero (the
     * default) disables deadlines. Covers the replay only, not
     * trace loading or config construction.
     */
    std::chrono::milliseconds cellDeadline{0};

    /**
     * Retry policy for retryable (Unavailable) failures of trace
     * loading or cell execution. The default (maxAttempts = 1)
     * disables retry.
     */
    RetryPolicy retry;

    /** Seed for the per-cell backoff jitter streams; equal seeds
     *  give equal backoff schedules. */
    std::uint64_t retrySeed = 0x10f5eec5u;

    /**
     * Path of the checkpoint file appended to (atomically, via
     * temp + rename) as cells complete successfully; empty
     * disables checkpointing.
     */
    std::string checkpointPath;

    /**
     * Path of a checkpoint to resume from: cells recorded there
     * are restored instead of replayed, byte-identically. Damage
     * (torn tail, bad CRC, duplicate cells) is warned about once
     * and only the damaged cells are recomputed. A missing file is
     * also just a warning — the sweep runs in full.
     */
    std::string resumePath;

    /**
     * Sweep-wide cancellation: once fired, cells not yet started
     * finish as SKIPPED and in-flight replays unwind at their next
     * cancellation check.
     */
    CancelToken cancel;

    /**
     * Test/progress hook called on the worker right after a cell
     * actually executed (any outcome; restored cells are not
     * reported). May run concurrently with itself.
     */
    std::function<void(const RunRow &row)> onCellComplete;

    /**
     * Override SimConfig::replayShards on every cell; 0 (the
     * default) leaves each config's own value. With a value > 1
     * the runner owns a dedicated shard pool — separate from the
     * cell pool, so a replay never waits on its own pool's queue —
     * and installs a ShardExecutor on each cell's config (unless
     * the config brought its own). Sharded replay is byte-
     * identical to serial; see docs/parallel_replay.md.
     */
    int replayShards = 0;

    /** Override SimConfig::replayBatchSize on every cell; 0 (the
     *  default) leaves each config's own value. */
    int replayBatchSize = 0;
};

struct CellRecord; // sweep/checkpoint.h

/**
 * Runs a (workload × config) sweep on a work-stealing pool. Each
 * trace is loaded once and shared read-only; each cell gets a
 * fresh Simulator and fresh observers. Row order — and every
 * simulation field in it — is independent of the job count, and
 * (via checkpoint/resume) of how many separate invocations the
 * sweep took.
 */
class SweepRunner
{
  public:
    SweepRunner(std::vector<WorkloadSpec> workloads,
                std::vector<ConfigSpec> configs,
                SweepOptions options = {});

    /** Execute the sweep; blocks until every cell completed. */
    SweepResult run();

  private:
    /** The durable form of a completed row. */
    static CellRecord recordOf(const RunRow &row);

    /** Apply options_.resumePath to the pre-sized grid: restore
     *  intact cells, warn once about any damage. */
    void restoreFromCheckpoint(SweepResult &out);

    std::vector<WorkloadSpec> workloads_;
    std::vector<ConfigSpec> configs_;
    SweepOptions options_;
};

} // namespace logseek::sweep

#endif // LOGSEEK_SWEEP_SWEEP_RUNNER_H
