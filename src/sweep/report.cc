#include "report.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

namespace logseek::sweep
{

namespace
{

/** Full-precision double rendering (round-trippable). */
std::string
formatExact(double value)
{
    std::ostringstream out;
    out.precision(std::numeric_limits<double>::max_digits10);
    out << value;
    return out.str();
}

/** The deterministic numeric fields of one row, in column order. */
struct Field
{
    const char *name;
    std::string value;
};

std::vector<Field>
resultFields(const stl::SimResult &result)
{
    return {
        {"reads", std::to_string(result.reads)},
        {"writes", std::to_string(result.writes)},
        {"readSeeks", std::to_string(result.readSeeks)},
        {"writeSeeks", std::to_string(result.writeSeeks)},
        {"fragmentedReads",
         std::to_string(result.fragmentedReads)},
        {"readFragments", std::to_string(result.readFragments)},
        {"cacheHits", std::to_string(result.cacheHits)},
        {"cacheMisses", std::to_string(result.cacheMisses)},
        {"prefetchHits", std::to_string(result.prefetchHits)},
        {"defragRewrites", std::to_string(result.defragRewrites)},
        {"defragBytes", std::to_string(result.defragBytes)},
        {"mediaReadBytes", std::to_string(result.mediaReadBytes)},
        {"mediaWriteBytes",
         std::to_string(result.mediaWriteBytes)},
        {"hostWriteBytes", std::to_string(result.hostWriteBytes)},
        {"cleaningReadBytes",
         std::to_string(result.cleaningReadBytes)},
        {"cleaningWriteBytes",
         std::to_string(result.cleaningWriteBytes)},
        {"cleaningSeeks", std::to_string(result.cleaningSeeks)},
        {"cleaningMerges", std::to_string(result.cleaningMerges)},
        {"staticFragments",
         std::to_string(result.staticFragments)},
        {"deviceErrorLogDropped",
         std::to_string(result.deviceErrorLogDropped)},
        {"gcVictimLiveBytes",
         std::to_string(result.gcVictimLiveBytes)},
        {"gcVictimSpanBytes",
         std::to_string(result.gcVictimSpanBytes)},
        {"seekTimeSec", formatExact(result.seekTimeSec)},
        {"writeAmplification",
         formatExact(result.writeAmplification())},
    };
}

std::string
csvQuote(const std::string &text)
{
    if (text.find_first_of(",\"\n") == std::string::npos)
        return text;
    std::string out = "\"";
    for (const char c : text) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeJson(std::ostream &out, const SweepResult &sweep,
          bool with_telemetry)
{
    out << "{\n  \"sweep\": {\n    \"workloads\": [";
    for (std::size_t i = 0; i < sweep.workloads.size(); ++i)
        out << (i ? ", " : "") << '"'
            << jsonEscape(sweep.workloads[i]) << '"';
    out << "],\n    \"configs\": [";
    for (std::size_t i = 0; i < sweep.configs.size(); ++i)
        out << (i ? ", " : "") << '"'
            << jsonEscape(sweep.configs[i]) << '"';
    out << "]";
    if (with_telemetry) {
        const SweepTelemetry &t = sweep.telemetry;
        out << ",\n    \"telemetry\": {\"jobs\": " << t.jobs
            << ", \"wallSec\": " << formatExact(t.wallSec)
            << ", \"replaySec\": " << formatExact(t.replaySec)
            << ", \"runs\": " << t.runs
            << ", \"failedRuns\": " << t.failedRuns
            << ", \"retriedRuns\": " << t.retriedRuns
            << ", \"timedOutRuns\": " << t.timedOutRuns
            << ", \"skippedRuns\": " << t.skippedRuns
            << ", \"restoredRuns\": " << t.restoredRuns
            << ", \"ops\": " << t.ops
            << ", \"opsPerSec\": " << formatExact(t.opsPerSec())
            << ", \"steals\": " << t.steals << "}";
    }
    out << "\n  },\n  \"rows\": [\n";
    for (std::size_t i = 0; i < sweep.rows.size(); ++i) {
        const RunRow &row = sweep.rows[i];
        out << "    {\"workload\": \""
            << jsonEscape(row.key.workload) << "\", \"config\": \""
            << jsonEscape(row.key.configLabel) << "\", \"ok\": "
            << (row.status.ok() ? "true" : "false")
            << ", \"outcome\": \"" << toString(row.outcome)
            << "\", \"attempts\": " << row.attempts;
        if (!row.status.ok())
            out << ", \"error\": \""
                << jsonEscape(row.status.message()) << '"';
        out << ", \"ops\": " << row.ops;
        if (row.status.ok())
            for (const Field &field : resultFields(row.result))
                out << ", \"" << field.name
                    << "\": " << field.value;
        if (with_telemetry)
            out << ", \"wallSec\": " << formatExact(row.wallSec)
                << ", \"opsPerSec\": "
                << formatExact(row.opsPerSec());
        out << '}' << (i + 1 < sweep.rows.size() ? "," : "")
            << '\n';
    }
    out << "  ]\n}\n";
}

void
writeCsv(std::ostream &out, const SweepResult &sweep,
         bool with_telemetry)
{
    out << "workload,config,ok,outcome,attempts,error,ops";
    // Column names come from an empty result: the field list is
    // static.
    for (const Field &field : resultFields(stl::SimResult{}))
        out << ',' << field.name;
    if (with_telemetry)
        out << ",wallSec,opsPerSec";
    out << '\n';

    for (const RunRow &row : sweep.rows) {
        out << csvQuote(row.key.workload) << ','
            << csvQuote(row.key.configLabel) << ','
            << (row.status.ok() ? "true" : "false") << ','
            << toString(row.outcome) << ',' << row.attempts << ','
            << csvQuote(row.status.ok() ? ""
                                        : row.status.message())
            << ',' << row.ops;
        if (row.status.ok()) {
            for (const Field &field : resultFields(row.result))
                out << ',' << field.value;
        } else {
            for (const Field &field :
                 resultFields(stl::SimResult{})) {
                (void)field;
                out << ',';
            }
        }
        if (with_telemetry)
            out << ',' << formatExact(row.wallSec) << ','
                << formatExact(row.opsPerSec());
        out << '\n';
    }
}

namespace
{

bool
writeFile(const std::string &path, const SweepResult &sweep,
          void (*writer)(std::ostream &, const SweepResult &, bool))
{
    if (path == "-") {
        writer(std::cout, sweep, true);
        return true;
    }
    std::ofstream file(path);
    if (!file) {
        std::cerr << "warn: cannot open report file '" << path
                  << "'\n";
        return false;
    }
    writer(file, sweep, true);
    return true;
}

} // namespace

bool
writeJsonFile(const std::string &path, const SweepResult &sweep)
{
    return writeFile(path, sweep, writeJson);
}

bool
writeCsvFile(const std::string &path, const SweepResult &sweep)
{
    return writeFile(path, sweep, writeCsv);
}

} // namespace logseek::sweep
