/**
 * @file
 * Work-stealing thread pool for sweep execution.
 *
 * Each worker owns a deque: it pushes and pops its own work LIFO
 * (cache-warm) and steals FIFO from the other workers when its own
 * deque drains (oldest, largest-granularity tasks first). Tasks may
 * submit further tasks — the sweep runner uses that to fan a
 * trace-load task out into per-config replay tasks on whichever
 * worker finished the load.
 */

#ifndef LOGSEEK_SWEEP_TASK_POOL_H
#define LOGSEEK_SWEEP_TASK_POOL_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "stl/simulator.h"
#include "telemetry/metrics.h"

namespace logseek::sweep
{

/**
 * A fixed-size pool of workers with per-worker deques and work
 * stealing. Tasks should handle their own errors (the sweep runner
 * stores a Status per run); a task that does throw is contained —
 * the exception is swallowed, counted in taskExceptionCount(), and
 * the pool keeps running and destructs cleanly.
 *
 * The pool also hosts a lazily-started watchdog thread: armWatchdog
 * schedules a callback at a steady-clock deadline, which the sweep
 * runner uses to fire a per-cell CancelSource when a replay
 * overstays its deadline. Callbacks run on the watchdog thread and
 * must be quick and non-blocking (firing a cancellation flag is the
 * intended use).
 */
class TaskPool
{
  public:
    /** Handle for a pending watchdog; see armWatchdog. */
    using WatchId = std::uint64_t;

    /** @param workers Worker-thread count; clamped to >= 1. */
    explicit TaskPool(unsigned workers);

    /** Waits for all submitted tasks, then joins the workers. */
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /**
     * Submit one task. Called from outside the pool, tasks are
     * dealt round-robin across workers; called from a worker, the
     * task lands on that worker's own deque (and is stolen from
     * there if the worker stays busy).
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task (and its spawns) ran. */
    void wait();

    /**
     * Schedule on_expire to run (on the watchdog thread) once
     * `deadline` passes, unless disarmed first. The callback may
     * still fire concurrently with a disarm that loses the race, so
     * it must be idempotent — cancelling a CancelSource is.
     */
    WatchId armWatchdog(std::chrono::steady_clock::time_point deadline,
                        std::function<void()> on_expire);

    /** Cancel a pending watchdog; a no-op if it already fired. */
    void disarmWatchdog(WatchId id);

    std::size_t workerCount() const { return workers_.size(); }

    /** Tasks that ran on a worker other than the one they were
     *  queued on — observability for the stealing behavior. */
    std::uint64_t stealCount() const { return steals_.load(); }

    /** Exceptions that escaped tasks and were contained. */
    std::uint64_t taskExceptionCount() const
    {
        return taskExceptions_.load();
    }

    /** Watchdogs that expired and ran their callback. */
    std::uint64_t watchdogFiredCount() const
    {
        return watchdogsFired_.load();
    }

  private:
    struct Worker
    {
        std::deque<std::function<void()>> queue;
        std::mutex mutex;
    };

    struct Watch
    {
        std::chrono::steady_clock::time_point deadline;
        std::function<void()> onExpire;
    };

    void workerLoop(std::size_t self);

    /** Pop own-back or steal another deque's front; run it. */
    bool runOneTask(std::size_t self);

    bool anyQueued();

    void watchdogLoop();

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex workMutex_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    std::size_t pending_ = 0; // guarded by workMutex_
    bool stop_ = false;       // guarded by workMutex_

    std::atomic<std::size_t> nextWorker_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> taskExceptions_{0};

    std::mutex watchMutex_;
    std::condition_variable watchCv_;
    std::map<WatchId, Watch> watches_; // guarded by watchMutex_
    WatchId nextWatchId_ = 1;          // guarded by watchMutex_
    bool watchStop_ = false;           // guarded by watchMutex_
    std::thread watchThread_;          // guarded by watchMutex_
    std::atomic<std::uint64_t> watchdogsFired_{0};

    // Telemetry handles, resolved once at construction. The queue
    // depth gauge tracks pending_ and is updated under workMutex_;
    // the counters are self-gated and wait-free.
    telemetry::Gauge *queueDepth_;
    telemetry::Counter *tasksTotal_;
    telemetry::Counter *stealsTotal_;
    telemetry::Counter *exceptionsTotal_;
    telemetry::Counter *watchdogsTotal_;
};

/** The thread-local index of the current pool worker, if any. */
int currentPoolWorker();

/**
 * A stl::ShardExecutor that fans shard chunks out over `pool`:
 * chunks 1..n-1 are submitted as pool tasks while the calling
 * thread runs chunk 0, then blocks until every chunk finished. An
 * exception from any chunk is rethrown on the caller (the first
 * one, by completion order) — never swallowed by the pool's own
 * containment, because the executor catches it before it escapes
 * the task.
 *
 * The executor only borrows `pool`; the pool must outlive every
 * replay the executor is installed on. It is safe to call from a
 * worker of a *different* pool (the sweep runner gives replays a
 * dedicated shard pool so a sweep worker never waits on its own
 * pool's queue), and safe to call concurrently from several
 * threads.
 */
stl::ShardExecutor makeShardExecutor(TaskPool &pool);

} // namespace logseek::sweep

#endif // LOGSEEK_SWEEP_TASK_POOL_H
