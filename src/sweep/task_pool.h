/**
 * @file
 * Work-stealing thread pool for sweep execution.
 *
 * Each worker owns a deque: it pushes and pops its own work LIFO
 * (cache-warm) and steals FIFO from the other workers when its own
 * deque drains (oldest, largest-granularity tasks first). Tasks may
 * submit further tasks — the sweep runner uses that to fan a
 * trace-load task out into per-config replay tasks on whichever
 * worker finished the load.
 */

#ifndef LOGSEEK_SWEEP_TASK_POOL_H
#define LOGSEEK_SWEEP_TASK_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace logseek::sweep
{

/**
 * A fixed-size pool of workers with per-worker deques and work
 * stealing. Tasks must not throw — wrap fallible work in its own
 * error handling (the sweep runner stores a Status per run).
 */
class TaskPool
{
  public:
    /** @param workers Worker-thread count; clamped to >= 1. */
    explicit TaskPool(unsigned workers);

    /** Waits for all submitted tasks, then joins the workers. */
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /**
     * Submit one task. Called from outside the pool, tasks are
     * dealt round-robin across workers; called from a worker, the
     * task lands on that worker's own deque (and is stolen from
     * there if the worker stays busy).
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task (and its spawns) ran. */
    void wait();

    std::size_t workerCount() const { return workers_.size(); }

    /** Tasks that ran on a worker other than the one they were
     *  queued on — observability for the stealing behavior. */
    std::uint64_t stealCount() const { return steals_.load(); }

  private:
    struct Worker
    {
        std::deque<std::function<void()>> queue;
        std::mutex mutex;
    };

    void workerLoop(std::size_t self);

    /** Pop own-back or steal another deque's front; run it. */
    bool runOneTask(std::size_t self);

    bool anyQueued();

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex workMutex_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    std::size_t pending_ = 0; // guarded by workMutex_
    bool stop_ = false;       // guarded by workMutex_

    std::atomic<std::size_t> nextWorker_{0};
    std::atomic<std::uint64_t> steals_{0};
};

/** The thread-local index of the current pool worker, if any. */
int currentPoolWorker();

} // namespace logseek::sweep

#endif // LOGSEEK_SWEEP_TASK_POOL_H
